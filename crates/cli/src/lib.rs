//! Implementation of the `soctam` command-line tool.
//!
//! The CLI is a thin front end over the shared tool registry
//! ([`soctam_registry::standard_registry`]): every subcommand, every
//! flag and all help text are **generated** from the registry's
//! declared tool schemas — there is no hand-maintained dispatch table
//! or flag parser to drift out of sync with the server. The
//! `soctam-serve` daemon is generated from the same registry, so
//! `soctam optimize d695 ...` and `POST /v1/tools/optimize` produce
//! byte-identical reports.
//!
//! ```text
//! soctam info     <soc>                     SOC summary (cores, terminals, volume)
//! soctam optimize <soc> [options]           compaction + SI-aware TAM optimization
//! soctam table    <soc> [options]           the paper's table sweep
//! soctam compact  <soc> [options]           compaction statistics only
//! ```
//!
//! `<soc>` is either an embedded benchmark name (`d695`, `p34392`,
//! `p93791`) or a path to an ITC'02 `.soc` file. Argument parsing is
//! dependency-free; every command accepts `--help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
use std::fmt::Write as _;
use std::io::IsTerminal as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use soctam::exec::{fault, Progress};
use soctam::Pool;
use soctam_registry::{
    expand_profile, parse_cli, resolve_soc, standard_registry, ParamKind, Tool, ToolCtx, ToolError,
    ToolErrorKind,
};

/// A CLI failure: a message and the exit code to report.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr (stdout when `code` is 0).
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }
}

impl From<ToolError> for CliError {
    fn from(err: ToolError) -> Self {
        CliError {
            code: match err.kind {
                ToolErrorKind::Usage => 2,
                ToolErrorKind::Invalid | ToolErrorKind::Failed => 1,
            },
            message: err.to_string(),
        }
    }
}

/// The `--progress` stderr ticker: a background thread that redraws
/// one status line (current phase, candidates probed, best `T_soc`)
/// ten times a second while a tool runs, then erases it. The sink it
/// polls is advisory — the ticker can never change results.
struct ProgressTicker {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressTicker {
    fn spawn(progress: Arc<Progress>) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let mut stderr = std::io::stderr().lock();
            while !stop_flag.load(Ordering::Relaxed) {
                let phase = progress.phase();
                if !phase.is_empty() {
                    let best = progress
                        .best()
                        .map_or_else(String::new, |b| format!("  best T_soc {b}"));
                    let line = format!("{phase}  probed {}{best}", progress.probed());
                    let _ = write!(stderr, "\r{line:<78}");
                    let _ = stderr.flush();
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
        });
        ProgressTicker { stop, handle }
    }

    /// Stops the ticker and erases its status line.
    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        let _ = self.handle.join();
        let mut stderr = std::io::stderr().lock();
        let _ = write!(stderr, "\r{:<78}\r", "");
        let _ = stderr.flush();
    }
}

/// Top-level usage text, generated from the tool registry.
pub fn usage() -> String {
    let mut out = String::from(
        "soctam — SOC test architecture optimization for signal-integrity faults\n\
         \n\
         USAGE:\n\
         \x20   soctam <COMMAND> <SOC> [OPTIONS]\n\
         \n\
         COMMANDS:\n",
    );
    for tool in standard_registry().tools() {
        let _ = writeln!(out, "    {:<9} {}", tool.name, tool.summary);
    }
    out.push_str(
        "\n\
         SOC:\n\
         \x20   d695 | p34392 | p93791 | path/to/file.soc\n\
         \n\
         Run `soctam <COMMAND> <SOC> --help` for that command's options.\n\
         \n\
         ENVIRONMENT:\n\
         \x20   SOCTAM_FAILPOINTS  deterministic fault injection, e.g.\n\
         \x20                      `tam.merge=error;exec.pool.task=panic@3`\n\
         \x20                      (sites fail with a structured error; see DESIGN.md)\n\
         \n\
         Results are bit-identical for every --jobs value; threads only change\n\
         the wall-clock time.\n",
    );
    out
}

/// Per-command usage text, generated from the tool's parameter schema.
pub fn tool_usage(tool: &Tool) -> String {
    let mut out = format!(
        "soctam {} — {}\n\nUSAGE:\n    soctam {} <SOC>{}\n",
        tool.name,
        tool.summary,
        tool.name,
        if tool.params.is_empty() {
            ""
        } else {
            " [OPTIONS]"
        }
    );
    if !tool.params.is_empty() {
        out.push_str("\nOPTIONS:\n");
        for param in tool.params {
            let arg = match param.kind {
                ParamKind::Bool => format!("--{}", param.name),
                ParamKind::Enum(values) => format!("--{} <{}>", param.name, values.join("|")),
                _ => format!("--{} <{}>", param.name, param.kind.type_name()),
            };
            let default = match (param.kind, param.default) {
                (ParamKind::Bool, _) | (_, None) => String::new(),
                (_, Some(d)) => format!(" [default: {d}]"),
            };
            let _ = writeln!(out, "    {arg:<24} {}{default}", param.help);
        }
    }
    out
}

/// Runs the CLI; returns the text to print on success.
///
/// # Errors
///
/// [`CliError`] carrying the message and exit code (0 means "print the
/// message to stdout and exit successfully", used for command help).
pub fn run(args: &[String]) -> Result<String, CliError> {
    // Arm deterministic failpoints from SOCTAM_FAILPOINTS before any
    // work happens; a malformed spec is a usage error, not a panic.
    fault::init_from_env()
        .map_err(|e| CliError::usage(format!("invalid {}: {e}", fault::ENV_VAR)))?;
    let Some(command) = args.first() else {
        return Err(CliError::usage(usage()));
    };
    if command == "--help" || command == "-h" {
        return Ok(usage());
    }
    let Some(tool) = standard_registry().get(command) else {
        return Err(CliError::usage(format!(
            "unknown command `{command}` (try --help)"
        )));
    };
    let Some(soc_spec) = args.get(1) else {
        return Err(CliError::usage(format!(
            "`{command}` needs an SOC argument (try --help)"
        )));
    };
    let rest = &args[2..];
    if rest.iter().any(|a| a == "--help" || a == "-h") {
        return Err(CliError {
            message: tool_usage(tool),
            code: 0,
        });
    }
    let soc = resolve_soc(soc_spec)?;
    let mut params = parse_cli(tool.params, rest).map_err(|e| CliError::usage(e.message))?;
    expand_profile(tool.params, &mut params)?;

    // `jobs` and `stats` are front-end concerns: the worker pool is
    // built here (the daemon sizes its own at startup), and statistics
    // are appended after the tool returns.
    let jobs = if params.contains("jobs") {
        params.usize("jobs")
    } else {
        1
    };
    let pool = Pool::new(jobs);
    let mut ctx = ToolCtx::new(pool.clone());
    // The `--progress` ticker is display-only and goes to stderr; it
    // stays silent when stdout is piped so `soctam ... > file` and
    // captured test output never see it.
    let ticker = if params.bool("progress")
        && std::io::stdout().is_terminal()
        && std::io::stderr().is_terminal()
    {
        let progress = Arc::new(Progress::new());
        ctx.progress = Some(Arc::clone(&progress));
        Some(ProgressTicker::spawn(progress))
    } else {
        None
    };
    let result = (tool.run)(&soc, &params, &ctx);
    if let Some(ticker) = ticker {
        ticker.finish();
    }
    let output = result?;
    let mut out = output.text;
    if params.bool("stats") {
        let _ = writeln!(out, "{}", pool.metrics().snapshot());
        if tool.params.iter().any(|p| p.name == "deadline-ms") {
            let _ = writeln!(out, "degraded: {}", output.degraded);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn info_runs_on_benchmarks() {
        let out = run(&args(&["info", "d695"])).expect("runs");
        assert!(out.contains("d695"));
        assert!(out.contains("s38584"));
    }

    #[test]
    fn optimize_runs_small() {
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "200",
            "--width",
            "8",
            "--partitions",
            "2",
        ]))
        .expect("runs");
        assert!(out.contains("T_soc"));
        assert!(out.contains("TAM0"));
    }

    #[test]
    fn table_runs_reduced_sweep() {
        let out = run(&args(&[
            "table",
            "d695",
            "--patterns",
            "150",
            "--widths",
            "8,16",
            "--parts",
            "1,2",
        ]))
        .expect("runs");
        assert!(out.contains("T_[8]"));
        assert!(out.contains("T_g2"));
    }

    #[test]
    fn compact_reports_stats() {
        let out = run(&args(&["compact", "d695", "--patterns", "300"])).expect("runs");
        assert!(out.contains("ratio"));
        assert!(out.contains("SI data volume"));
    }

    #[test]
    fn svg_output_is_written() {
        let dir = std::env::temp_dir().join("soctam_cli_svg_test.svg");
        let path = dir.to_string_lossy().to_string();
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "100",
            "--width",
            "8",
            "--svg",
            &path,
        ]))
        .expect("runs");
        assert!(out.contains("SVG written"));
        let svg = std::fs::read_to_string(&path).expect("file exists");
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounds_prints_one_row_per_width() {
        let out = run(&args(&[
            "bounds",
            "d695",
            "--patterns",
            "100",
            "--widths",
            "8,16,32",
        ]))
        .expect("runs");
        assert!(out.contains("LB(T_in)"));
        assert_eq!(out.lines().count(), 2 + 3);
    }

    #[test]
    fn simulate_confirms_model_agreement() {
        let out = run(&args(&[
            "simulate",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
        ]))
        .expect("runs");
        assert!(out.contains("agree exactly"));
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let text = run(&args(&["export", "p34392"])).expect("runs");
        let soc = soctam::model::parser::parse_soc(&text)
            .expect("parses")
            .into_soc()
            .expect("valid");
        assert_eq!(soc.num_cores(), 19);
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&args(&["frobnicate", "d695"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn unknown_flag_is_usage_error() {
        let err = run(&args(&["info", "d695"])); // no flags: fine
        assert!(err.is_ok());
        let err = run(&args(&["optimize", "d695", "--bogus"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--bogus"));
    }

    #[test]
    fn flags_are_checked_against_the_commands_own_schema() {
        // `--widths` belongs to `table`/`bounds`, not `optimize`; the
        // registry-generated parser rejects it there.
        let err = run(&args(&["optimize", "d695", "--widths", "8"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--widths"));
    }

    #[test]
    fn missing_soc_is_usage_error() {
        let err = run(&args(&["info"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn bad_file_is_runtime_error() {
        let err = run(&args(&["info", "/nonexistent/x.soc"])).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn help_exits_cleanly() {
        let out = run(&args(&["--help"])).expect("help is success");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn usage_lists_every_registered_tool() {
        let text = usage();
        for tool in standard_registry().tools() {
            assert!(text.contains(tool.name), "usage misses `{}`", tool.name);
        }
    }

    #[test]
    fn command_help_is_generated_from_the_schema() {
        let err = run(&args(&["optimize", "d695", "--help"])).unwrap_err();
        assert_eq!(err.code, 0, "command help prints and exits 0");
        assert!(err.message.contains("USAGE"));
        assert!(err.message.contains("--deadline-ms"));
        assert!(err.message.contains("[default: 10000]"));
        // Enum flags spell their allowed values inline.
        assert!(err.message.contains("--backend <tr-architect|rect-pack>"));
    }

    #[test]
    fn backend_flag_round_trips_and_rejects_unknown_names() {
        let base = &[
            "optimize",
            "d695",
            "--patterns",
            "200",
            "--width",
            "8",
            "--partitions",
            "2",
        ][..];
        let default_run = run(&args(base)).expect("runs");
        let mut explicit = args(base);
        explicit.extend(args(&["--backend", "tr-architect"]));
        assert_eq!(
            run(&explicit).expect("runs"),
            default_run,
            "explicit default backend must be byte-identical"
        );
        let mut rect = args(base);
        rect.extend(args(&["--backend", "rect-pack"]));
        assert!(run(&rect).expect("runs").contains("T_soc"));
        let mut bogus = args(base);
        bogus.extend(args(&["--backend", "annealing"]));
        let err = run(&bogus).unwrap_err();
        assert_eq!(err.code, 2, "unknown backend is a usage error");
        assert!(err.message.contains("tr-architect"));
    }

    #[test]
    fn jobs_values_produce_identical_output() {
        let base = args(&[
            "optimize",
            "d695",
            "--patterns",
            "300",
            "--width",
            "8",
            "--partitions",
            "2",
        ]);
        let serial = run(&base).expect("runs");
        for jobs in ["2", "4"] {
            let mut parallel = base.clone();
            parallel.extend(args(&["--jobs", jobs]));
            assert_eq!(run(&parallel).expect("runs"), serial, "--jobs {jobs}");
        }
    }

    #[test]
    fn probe_jobs_values_produce_identical_output() {
        let base = args(&[
            "optimize",
            "d695",
            "--patterns",
            "300",
            "--width",
            "8",
            "--partitions",
            "2",
        ]);
        let serial = run(&base).expect("runs");
        for (jobs, probe_jobs) in [("1", "4"), ("1", "8"), ("4", "4")] {
            let mut parallel = base.clone();
            parallel.extend(args(&["--jobs", jobs, "--probe-jobs", probe_jobs]));
            assert_eq!(
                run(&parallel).expect("runs"),
                serial,
                "--jobs {jobs} --probe-jobs {probe_jobs}"
            );
        }
    }

    #[test]
    fn profile_fills_defaults_and_explicit_flags_win() {
        let path = std::env::temp_dir().join("soctam_cli_profile_test.profile");
        std::fs::write(&path, "patterns = 150\nwidth = 16\npartitions = 2\n")
            .expect("temp dir is writable");
        let path = path.to_string_lossy().to_string();
        let explicit = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
            "--partitions",
            "2",
        ]))
        .expect("runs");
        // `--width 8` overrides the profile's 16; the other two keys
        // come from the file.
        let profiled = run(&args(&[
            "optimize",
            "d695",
            "--profile",
            &path,
            "--width",
            "8",
        ]))
        .expect("runs");
        assert_eq!(profiled, explicit);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn profile_with_unknown_key_is_invalid_with_stable_code() {
        let path = std::env::temp_dir().join("soctam_cli_profile_bad.profile");
        std::fs::write(&path, "bogus = 1\n").expect("temp dir is writable");
        let path = path.to_string_lossy().to_string();
        let err = run(&args(&["optimize", "d695", "--profile", &path])).unwrap_err();
        assert_eq!(err.code, 1, "invalid profile is a runtime error, not usage");
        assert!(err.message.contains("PRF-V2"), "{}", err.message);
        assert!(err.message.contains("bogus"), "{}", err.message);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn stats_flag_reports_runtime_stats() {
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
            "--jobs",
            "2",
            "--stats",
        ]))
        .expect("runs");
        assert!(out.contains("runtime stats:"));
        assert!(out.contains("cache"));
        assert!(out.contains("phase"));
        // The delta evaluator's counters: every optimizer run computes at
        // least one rail component and reuses at least one schedule, so
        // both lines (gated on nonzero) must be present.
        assert!(out.contains("rail evals"));
        assert!(out.contains("schedule reuse"));
        // The optimizer's move loops probe candidates speculatively even
        // at --probe-jobs 1, so the probe counters must be reported.
        assert!(out.contains("speculative"), "{out}");
        assert!(out.contains("batches"), "{out}");
    }

    #[test]
    fn budget_flags_degrade_gracefully() {
        // A one-iteration budget must still produce a full report, plus
        // the degraded note.
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
            "--partitions",
            "2",
            "--max-iters",
            "1",
            "--stats",
        ]))
        .expect("degrades, does not fail");
        assert!(out.contains("optimization budget exhausted"), "{out}");
        assert!(out.contains("degraded: true"), "{out}");
        assert!(out.contains("T_soc"));
    }

    #[test]
    fn bad_budget_values_are_usage_errors() {
        let err = run(&args(&["optimize", "d695", "--deadline-ms", "soon"])).unwrap_err();
        assert_eq!(err.code, 2);
        let err = run(&args(&["optimize", "d695", "--max-iters", "-1"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn cache_cap_flag_bounds_the_evaluator_cache() {
        let base = args(&[
            "optimize",
            "d695",
            "--patterns",
            "200",
            "--width",
            "8",
            "--partitions",
            "2",
        ]);
        let unbounded = run(&base).expect("runs");
        let mut capped = base.clone();
        capped.extend(args(&["--cache-cap", "64"]));
        // A tiny cache only costs recomputation, never correctness.
        assert_eq!(run(&capped).expect("runs"), unbounded);
    }
}
