//! Implementation of the `soctam` command-line tool.
//!
//! The CLI wraps the [`soctam`] facade:
//!
//! ```text
//! soctam info     <soc>                     SOC summary (cores, terminals, volume)
//! soctam optimize <soc> [options]           compaction + SI-aware TAM optimization
//! soctam table    <soc> [options]           the paper's table sweep
//! soctam compact  <soc> [options]           compaction statistics only
//! ```
//!
//! `<soc>` is either an embedded benchmark name (`d695`, `p34392`,
//! `p93791`) or a path to an ITC'02 `.soc` file. Argument parsing is
//! dependency-free; every command accepts `--help`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
use std::fmt::Write as _;

use soctam::exec::fault;
use soctam::experiment::{run_table_with, ExperimentConfig};
use soctam::model::parser::parse_soc;
use soctam::tam::render_schedule;
use soctam::{
    compact_two_dimensional_with, Benchmark, CompactionConfig, Objective, OptimizerBudget, Pool,
    RandomPatternConfig, SiOptimizer, SiPatternSet, Soc,
};

/// A CLI failure: a message and the exit code to report.
#[derive(Debug)]
pub struct CliError {
    /// Message printed to stderr.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
soctam — SOC test architecture optimization for signal-integrity faults

USAGE:
    soctam <COMMAND> <SOC> [OPTIONS]

COMMANDS:
    info      print an SOC summary
    optimize  run 2-D compaction + SI-aware TAM optimization
    table     run the paper's Table 2/3 sweep
    compact   run compaction only and report statistics
    export    write the SOC back out in ITC'02 .soc format
    bounds    print architecture-independent lower bounds per width
    simulate  cross-check the timing model against the bit-level simulator

SOC:
    d695 | p34392 | p93791 | path/to/file.soc

OPTIONS (optimize / table / compact):
    --patterns <N>     raw SI pattern count N_r        [default: 10000]
    --width <W>        TAM width budget W_max          [default: 32]
    --partitions <I>   SI partition count i            [default: 4]
    --seed <S>         RNG seed                        [default: 2007]
    --jobs <N>         worker threads (0 = all cores)  [default: 1]
    --stats            print runtime statistics (tasks, steals, cache)
    --baseline         optimize for InTest only (TR-Architect)
    --svg <file>       write the schedule as SVG (optimize)
    --widths <list>    comma list of widths (table)    [default: 8,16,..,64]
    --parts <list>     comma list of partitions (table)[default: 1,2,4,8]
    --deadline-ms <MS> wall-clock budget for the TAM optimization; on
                       expiry the best architecture found so far is
                       reported and flagged as degraded (optimize)
    --max-iters <N>    deterministic iteration budget (optimize)

ENVIRONMENT:
    SOCTAM_FAILPOINTS  deterministic fault injection, e.g.
                       `tam.merge=error;exec.pool.task=panic@3`
                       (sites fail with a structured error; see DESIGN.md)

Results are bit-identical for every --jobs value; threads only change
the wall-clock time.
";

/// Parsed command-line options.
#[derive(Clone, Debug, PartialEq)]
pub struct Options {
    /// Raw pattern count `N_r`.
    pub patterns: usize,
    /// TAM width budget.
    pub width: u32,
    /// Partition count.
    pub partitions: u32,
    /// RNG seed.
    pub seed: u64,
    /// InTest-only objective.
    pub baseline: bool,
    /// Optional SVG output path for `optimize`.
    pub svg: Option<String>,
    /// Width sweep for `table`.
    pub widths: Vec<u32>,
    /// Partition sweep for `table`.
    pub parts: Vec<u32>,
    /// Worker thread count (1 = serial, 0 = all available cores).
    pub jobs: usize,
    /// Print runtime statistics after the command.
    pub stats: bool,
    /// Wall-clock budget for the TAM optimization, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Deterministic iteration budget for the TAM optimization.
    pub max_iters: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            patterns: 10_000,
            width: 32,
            partitions: 4,
            seed: 2007,
            baseline: false,
            svg: None,
            widths: (1..=8).map(|i| i * 8).collect(),
            parts: vec![1, 2, 4, 8],
            jobs: 1,
            stats: false,
            deadline_ms: None,
            max_iters: None,
        }
    }
}

impl Options {
    /// The optimizer budget the flags describe (unlimited by default).
    pub fn budget(&self) -> OptimizerBudget {
        let mut budget = OptimizerBudget::unlimited();
        if let Some(ms) = self.deadline_ms {
            budget = budget.with_deadline(std::time::Duration::from_millis(ms));
        }
        if let Some(iters) = self.max_iters {
            budget = budget.with_max_iterations(iters);
        }
        budget
    }
}

fn parse_list(value: &str, flag: &str) -> Result<Vec<u32>, CliError> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<u32>()
                .map_err(|_| CliError::usage(format!("invalid value `{part}` for {flag}")))
        })
        .collect()
}

/// Parses options from arguments following the command and SOC.
///
/// # Errors
///
/// [`CliError`] with a usage message on unknown flags or bad values.
pub fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |flag: &str| -> Result<&String, CliError> {
            iter.next()
                .ok_or_else(|| CliError::usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--patterns" => {
                options.patterns = value_for("--patterns")?
                    .parse()
                    .map_err(|_| CliError::usage("invalid --patterns value"))?;
            }
            "--width" => {
                options.width = value_for("--width")?
                    .parse()
                    .map_err(|_| CliError::usage("invalid --width value"))?;
            }
            "--partitions" => {
                options.partitions = value_for("--partitions")?
                    .parse()
                    .map_err(|_| CliError::usage("invalid --partitions value"))?;
            }
            "--seed" => {
                options.seed = value_for("--seed")?
                    .parse()
                    .map_err(|_| CliError::usage("invalid --seed value"))?;
            }
            "--jobs" => {
                options.jobs = value_for("--jobs")?
                    .parse()
                    .map_err(|_| CliError::usage("invalid --jobs value"))?;
            }
            "--stats" => options.stats = true,
            "--baseline" => options.baseline = true,
            "--deadline-ms" => {
                options.deadline_ms = Some(
                    value_for("--deadline-ms")?
                        .parse()
                        .map_err(|_| CliError::usage("invalid --deadline-ms value"))?,
                );
            }
            "--max-iters" => {
                options.max_iters = Some(
                    value_for("--max-iters")?
                        .parse()
                        .map_err(|_| CliError::usage("invalid --max-iters value"))?,
                );
            }
            "--svg" => options.svg = Some(value_for("--svg")?.clone()),
            "--widths" => options.widths = parse_list(value_for("--widths")?, "--widths")?,
            "--parts" => options.parts = parse_list(value_for("--parts")?, "--parts")?,
            "--help" | "-h" => {
                return Err(CliError {
                    message: USAGE.into(),
                    code: 0,
                })
            }
            other => {
                return Err(CliError::usage(format!(
                    "unknown option `{other}` (try --help)"
                )))
            }
        }
    }
    Ok(options)
}

/// Resolves a benchmark name or `.soc` path into an SOC.
///
/// # Errors
///
/// [`CliError`] when the name is unknown or the file does not parse.
pub fn load_soc(spec: &str) -> Result<Soc, CliError> {
    if let Ok(bench) = spec.parse::<Benchmark>() {
        return Ok(bench.soc());
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| CliError::runtime(format!("cannot read `{spec}`: {e}")))?;
    parse_soc(&text)
        .and_then(|f| f.into_soc())
        .map_err(|e| CliError::runtime(format!("cannot parse `{spec}`: {e}")))
}

/// Runs the CLI; returns the text to print on success.
///
/// # Errors
///
/// [`CliError`] carrying the message and exit code.
pub fn run(args: &[String]) -> Result<String, CliError> {
    // Arm deterministic failpoints from SOCTAM_FAILPOINTS before any
    // work happens; a malformed spec is a usage error, not a panic.
    fault::init_from_env()
        .map_err(|e| CliError::usage(format!("invalid {}: {e}", fault::ENV_VAR)))?;
    let Some(command) = args.first() else {
        return Err(CliError::usage(USAGE));
    };
    if command == "--help" || command == "-h" {
        return Ok(USAGE.to_owned());
    }
    let Some(soc_spec) = args.get(1) else {
        return Err(CliError::usage(format!(
            "`{command}` needs an SOC argument (try --help)"
        )));
    };
    let soc = load_soc(soc_spec)?;
    let options = parse_options(&args[2..])?;

    match command.as_str() {
        "info" => Ok(info(&soc)),
        "optimize" => optimize(&soc, &options),
        "table" => table(&soc, &options),
        "compact" => compact(&soc, &options),
        "export" => Ok(soctam::model::parser::write_soc(&soc)),
        "bounds" => bounds(&soc, &options),
        "simulate" => simulate_cmd(&soc, &options),
        other => Err(CliError::usage(format!(
            "unknown command `{other}` (try --help)"
        ))),
    }
}

fn info(soc: &Soc) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{soc}");
    let _ = writeln!(
        out,
        "total InTest data volume: {} bits; total I/O: {}",
        soc.total_test_data_volume(),
        soc.total_io()
    );
    let _ = writeln!(
        out,
        "{:>4} {:>14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
        "id", "name", "in", "out", "bidir", "chains", "cells", "patterns"
    );
    for (id, core) in soc.iter() {
        let _ = writeln!(
            out,
            "{:>4} {:>14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
            id.raw(),
            core.name(),
            core.inputs(),
            core.outputs(),
            core.bidirs(),
            core.scan_chains().len(),
            core.scan_cells(),
            core.patterns()
        );
    }
    out
}

/// The worker pool a command runs on (`--jobs`).
fn pool_for(options: &Options) -> Pool {
    Pool::new(options.jobs)
}

/// Appends the pool's runtime statistics when `--stats` was given.
fn append_stats(out: &mut String, pool: &Pool, options: &Options) {
    if options.stats {
        let _ = writeln!(out, "{}", pool.metrics().snapshot());
    }
}

fn optimize(soc: &Soc, options: &Options) -> Result<String, CliError> {
    let pool = pool_for(options);
    let patterns = pool
        .metrics()
        .time("generate", || {
            SiPatternSet::random_with(
                soc,
                &RandomPatternConfig::new(options.patterns).with_seed(options.seed),
                &pool,
            )
        })
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let objective = if options.baseline {
        Objective::InTestOnly
    } else {
        Objective::Total
    };
    let result = SiOptimizer::new(soc)
        .max_tam_width(options.width)
        .partitions(options.partitions)
        .seed(options.seed)
        .objective(objective)
        .budget(options.budget())
        .pool(pool.clone())
        .optimize(&patterns)
        .map_err(|e| CliError::runtime(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: N_r={} -> {} compacted patterns in {} groups",
        soc.name(),
        options.patterns,
        result.compacted().total_patterns(),
        result.compacted().groups().len()
    );
    if result.degraded() {
        let _ = writeln!(
            out,
            "note: optimization budget exhausted; reporting the best \
             architecture found so far (degraded)"
        );
    }
    let _ = writeln!(out, "{}", result.architecture());
    let _ = writeln!(
        out,
        "{}",
        render_schedule(result.architecture(), result.evaluation())
    );
    if let Some(path) = &options.svg {
        let svg = soctam::tam::render_schedule_svg(result.architecture(), result.evaluation());
        std::fs::write(path, svg)
            .map_err(|e| CliError::runtime(format!("cannot write `{path}`: {e}")))?;
        let _ = writeln!(out, "schedule SVG written to {path}");
    }
    append_stats(&mut out, &pool, options);
    if options.stats {
        let _ = writeln!(out, "degraded: {}", result.degraded());
    }
    Ok(out)
}

fn table(soc: &Soc, options: &Options) -> Result<String, CliError> {
    let pool = pool_for(options);
    let config = ExperimentConfig {
        pattern_count: options.patterns,
        widths: options.widths.clone(),
        partitions: options.parts.clone(),
        seed: options.seed,
    };
    let table =
        run_table_with(soc, &config, &pool).map_err(|e| CliError::runtime(e.to_string()))?;
    let mut out = table.to_string();
    append_stats(&mut out, &pool, options);
    Ok(out)
}

fn compact(soc: &Soc, options: &Options) -> Result<String, CliError> {
    let pool = pool_for(options);
    let patterns = pool
        .metrics()
        .time("generate", || {
            SiPatternSet::random_with(
                soc,
                &RandomPatternConfig::new(options.patterns).with_seed(options.seed),
                &pool,
            )
        })
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let compacted = pool
        .metrics()
        .time("compact", || {
            compact_two_dimensional_with(
                soc,
                &patterns,
                &CompactionConfig::new(options.partitions).with_seed(options.seed),
                &pool,
            )
        })
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let stats = compacted.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} raw -> {} compacted (ratio {:.1}x), {} groups, cut weight {}",
        soc.name(),
        stats.raw_patterns,
        compacted.total_patterns(),
        stats.compaction_ratio(),
        compacted.groups().len(),
        stats.cut_weight
    );
    if stats.duplicate_patterns > 0 {
        let _ = writeln!(
            out,
            "  {} exact duplicates removed before compaction",
            stats.duplicate_patterns
        );
    }
    for (i, group) in compacted.groups().iter().enumerate() {
        let _ = writeln!(
            out,
            "  group {i}: {} cores, {} patterns",
            group.cores().len(),
            group.pattern_count()
        );
    }
    let _ = writeln!(out, "SI data volume: {} bits", compacted.data_volume(soc));
    append_stats(&mut out, &pool, options);
    Ok(out)
}

fn bounds(soc: &Soc, options: &Options) -> Result<String, CliError> {
    use soctam::tam::bounds::{intest_lower_bound, si_lower_bound};
    let pool = pool_for(options);
    let patterns = SiPatternSet::random_with(
        soc,
        &RandomPatternConfig::new(options.patterns).with_seed(options.seed),
        &pool,
    )
    .map_err(|e| CliError::runtime(e.to_string()))?;
    let compacted = compact_two_dimensional_with(
        soc,
        &patterns,
        &CompactionConfig::new(options.partitions).with_seed(options.seed),
        &pool,
    )
    .map_err(|e| CliError::runtime(e.to_string()))?;
    let groups = soctam::SiGroupSpec::from_compacted(&compacted);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: lower bounds (N_r = {}, i = {})",
        soc.name(),
        options.patterns,
        options.partitions
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12}",
        "Wmax", "LB(T_in)", "LB(T_si)", "LB(T_soc)"
    );
    for &w in &options.widths {
        let lb_in = intest_lower_bound(soc, w).map_err(|e| CliError::runtime(e.to_string()))?;
        let lb_si =
            si_lower_bound(soc, &groups, w).map_err(|e| CliError::runtime(e.to_string()))?;
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>12}",
            w,
            lb_in,
            lb_si,
            lb_in + lb_si
        );
    }
    Ok(out)
}

fn simulate_cmd(soc: &Soc, options: &Options) -> Result<String, CliError> {
    let pool = pool_for(options);
    let patterns = SiPatternSet::random_with(
        soc,
        &RandomPatternConfig::new(options.patterns).with_seed(options.seed),
        &pool,
    )
    .map_err(|e| CliError::runtime(e.to_string()))?;
    let result = SiOptimizer::new(soc)
        .max_tam_width(options.width)
        .partitions(options.partitions)
        .seed(options.seed)
        .pool(pool.clone())
        .optimize(&patterns)
        .map_err(|e| CliError::runtime(e.to_string()))?;
    let sim = soctam::tester::simulate(
        soc,
        result.architecture(),
        result.compacted().groups(),
        false,
    )
    .map_err(|e| CliError::runtime(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "analytic : T_in = {} cc, T_si = {} cc",
        result.intest_time(),
        result.si_time()
    );
    let _ = writeln!(
        out,
        "simulated: T_in = {} cc, T_si = {} cc",
        sim.t_in, sim.t_si
    );
    let agree = sim.t_in == result.intest_time() && sim.t_si == result.si_time();
    let _ = writeln!(
        out,
        "{} ({} stimulus bits driven)",
        if agree {
            "model and bit-level simulation agree exactly"
        } else {
            "MISMATCH between model and simulation"
        },
        sim.bits_driven
    );
    if !agree {
        return Err(CliError::runtime(out));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn info_runs_on_benchmarks() {
        let out = run(&args(&["info", "d695"])).expect("runs");
        assert!(out.contains("d695"));
        assert!(out.contains("s38584"));
    }

    #[test]
    fn optimize_runs_small() {
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "200",
            "--width",
            "8",
            "--partitions",
            "2",
        ]))
        .expect("runs");
        assert!(out.contains("T_soc"));
        assert!(out.contains("TAM0"));
    }

    #[test]
    fn table_runs_reduced_sweep() {
        let out = run(&args(&[
            "table",
            "d695",
            "--patterns",
            "150",
            "--widths",
            "8,16",
            "--parts",
            "1,2",
        ]))
        .expect("runs");
        assert!(out.contains("T_[8]"));
        assert!(out.contains("T_g2"));
    }

    #[test]
    fn compact_reports_stats() {
        let out = run(&args(&["compact", "d695", "--patterns", "300"])).expect("runs");
        assert!(out.contains("ratio"));
        assert!(out.contains("SI data volume"));
    }

    #[test]
    fn svg_output_is_written() {
        let dir = std::env::temp_dir().join("soctam_cli_svg_test.svg");
        let path = dir.to_string_lossy().to_string();
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "100",
            "--width",
            "8",
            "--svg",
            &path,
        ]))
        .expect("runs");
        assert!(out.contains("SVG written"));
        let svg = std::fs::read_to_string(&path).expect("file exists");
        assert!(svg.starts_with("<svg"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bounds_prints_one_row_per_width() {
        let out = run(&args(&[
            "bounds",
            "d695",
            "--patterns",
            "100",
            "--widths",
            "8,16,32",
        ]))
        .expect("runs");
        assert!(out.contains("LB(T_in)"));
        assert_eq!(out.lines().count(), 2 + 3);
    }

    #[test]
    fn simulate_confirms_model_agreement() {
        let out = run(&args(&[
            "simulate",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
        ]))
        .expect("runs");
        assert!(out.contains("agree exactly"));
    }

    #[test]
    fn export_roundtrips_through_the_parser() {
        let text = run(&args(&["export", "p34392"])).expect("runs");
        let soc = soctam::model::parser::parse_soc(&text)
            .expect("parses")
            .into_soc()
            .expect("valid");
        assert_eq!(soc.num_cores(), 19);
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&args(&["frobnicate", "d695"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn unknown_flag_is_usage_error() {
        let err = run(&args(&["info", "d695"])); // no flags: fine
        assert!(err.is_ok());
        let err = run(&args(&["optimize", "d695", "--bogus"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--bogus"));
    }

    #[test]
    fn missing_soc_is_usage_error() {
        let err = run(&args(&["info"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn bad_file_is_runtime_error() {
        let err = run(&args(&["info", "/nonexistent/x.soc"])).unwrap_err();
        assert_eq!(err.code, 1);
    }

    #[test]
    fn help_exits_cleanly() {
        let out = run(&args(&["--help"])).expect("help is success");
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn jobs_values_produce_identical_output() {
        let base = args(&[
            "optimize",
            "d695",
            "--patterns",
            "300",
            "--width",
            "8",
            "--partitions",
            "2",
        ]);
        let serial = run(&base).expect("runs");
        for jobs in ["2", "4"] {
            let mut parallel = base.clone();
            parallel.extend(args(&["--jobs", jobs]));
            assert_eq!(run(&parallel).expect("runs"), serial, "--jobs {jobs}");
        }
    }

    #[test]
    fn stats_flag_reports_runtime_stats() {
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
            "--jobs",
            "2",
            "--stats",
        ]))
        .expect("runs");
        assert!(out.contains("runtime stats:"));
        assert!(out.contains("cache"));
        assert!(out.contains("phase"));
        // The delta evaluator's counters: every optimizer run computes at
        // least one rail component and reuses at least one schedule, so
        // both lines (gated on nonzero) must be present.
        assert!(out.contains("rail evals"));
        assert!(out.contains("schedule reuse"));
    }

    #[test]
    fn budget_flags_parse_and_degrade_gracefully() {
        let opts =
            parse_options(&args(&["--deadline-ms", "50", "--max-iters", "3"])).expect("parses");
        assert_eq!(opts.deadline_ms, Some(50));
        assert_eq!(opts.max_iters, Some(3));
        assert!(!opts.budget().is_unlimited());
        assert!(Options::default().budget().is_unlimited());

        // A one-iteration budget must still produce a full report, plus
        // the degraded note.
        let out = run(&args(&[
            "optimize",
            "d695",
            "--patterns",
            "150",
            "--width",
            "8",
            "--partitions",
            "2",
            "--max-iters",
            "1",
            "--stats",
        ]))
        .expect("degrades, does not fail");
        assert!(out.contains("optimization budget exhausted"), "{out}");
        assert!(out.contains("degraded: true"), "{out}");
        assert!(out.contains("T_soc"));
    }

    #[test]
    fn bad_budget_values_are_usage_errors() {
        let err = parse_options(&args(&["--deadline-ms", "soon"])).unwrap_err();
        assert_eq!(err.code, 2);
        let err = parse_options(&args(&["--max-iters", "-1"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn option_parsing_roundtrip() {
        let opts = parse_options(&args(&[
            "--patterns",
            "123",
            "--width",
            "9",
            "--partitions",
            "3",
            "--seed",
            "7",
            "--baseline",
            "--widths",
            "8,9",
            "--parts",
            "1,3",
        ]))
        .expect("parses");
        assert_eq!(opts.patterns, 123);
        assert_eq!(opts.width, 9);
        assert_eq!(opts.partitions, 3);
        assert_eq!(opts.seed, 7);
        assert!(opts.baseline);
        assert_eq!(opts.widths, vec![8, 9]);
        assert_eq!(opts.parts, vec![1, 3]);
    }
}
