//! File-based end-to-end flow: export a benchmark to a real `.soc` file,
//! reload it through the CLI path, and run every command against it.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn exported_file_drives_every_command() {
    let path = std::env::temp_dir().join("soctam_cli_roundtrip_p34392.soc");
    let path_str = path.to_string_lossy().to_string();

    // Export.
    let text = soctam_cli::run(&args(&["export", "p34392"])).expect("export runs");
    fs::write(&path, &text).expect("file written");

    // info: identical structure to the embedded SOC.
    let info = soctam_cli::run(&args(&["info", &path_str])).expect("info runs");
    assert!(info.contains("19 cores"));

    // compact / bounds / optimize on the file.
    let compact = soctam_cli::run(&args(&[
        "compact",
        &path_str,
        "--patterns",
        "400",
        "--partitions",
        "2",
    ]))
    .expect("compact runs");
    assert!(compact.contains("ratio"));

    let bounds = soctam_cli::run(&args(&[
        "bounds",
        &path_str,
        "--patterns",
        "200",
        "--widths",
        "16",
    ]))
    .expect("bounds runs");
    assert!(bounds.contains("LB(T_soc)"));

    let optimize = soctam_cli::run(&args(&[
        "optimize",
        &path_str,
        "--patterns",
        "300",
        "--width",
        "16",
    ]))
    .expect("optimize runs");
    assert!(optimize.contains("T_soc"));

    // The file-loaded SOC must optimize to the same result as the
    // embedded one (the export is lossless for the fields that matter).
    let embedded = soctam_cli::run(&args(&[
        "optimize",
        "p34392",
        "--patterns",
        "300",
        "--width",
        "16",
    ]))
    .expect("optimize runs");
    // Names differ (module1 vs p34392_c1) but every number matches.
    let digits = |s: &str| {
        s.lines()
            .filter(|l| l.contains("T_soc"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(digits(&optimize), digits(&embedded));

    let _ = fs::remove_file(&path);
}
