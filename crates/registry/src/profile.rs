//! Named parameter profiles: reusable `key=value` files that pre-fill
//! tool parameters.
//!
//! A profile file holds one `name=value` pair per line, in the same
//! text syntax the CLI flags use (`#` starts a comment, blank lines are
//! ignored):
//!
//! ```text
//! # quick iteration: small sweep, all cores
//! patterns = 2000
//! widths = 8,16
//! jobs = 0
//! ```
//!
//! Both front ends accept `profile` (CLI `--profile <path>`, daemon
//! `"profile": "<path>"` in `params`), because the parameter lives in
//! the shared registry schema like every other. Precedence is fixed:
//! spec defaults < profile entries < explicit flags / JSON fields — a
//! value the user typed is never overridden by the file.
//!
//! Failures carry stable diagnostic codes so scripts and the daemon's
//! JSON error surface can match on them:
//!
//! | code   | meaning                                          |
//! |--------|--------------------------------------------------|
//! | PRF-V1 | the profile file cannot be read                  |
//! | PRF-V2 | a key the tool does not declare                  |
//! | PRF-V3 | a value that does not parse against the spec     |

use crate::param::{find_spec, ParamSpec, ParamValues};
use crate::tool::{ToolError, ToolErrorKind};

fn profile_error(code: &str, message: String) -> ToolError {
    ToolError {
        kind: ToolErrorKind::Invalid,
        message,
        codes: vec![code.to_owned()],
    }
}

/// Parses profile text into `(line_number, key, value)` entries.
///
/// # Errors
///
/// `PRF-V3` when a non-comment line has no `=`.
pub fn parse_profile(text: &str, origin: &str) -> Result<Vec<(usize, String, String)>, ToolError> {
    let mut entries = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(profile_error(
                "PRF-V3",
                format!("{origin}:{}: expected `key = value`, got `{line}`", i + 1),
            ));
        };
        entries.push((i + 1, key.trim().to_owned(), value.trim().to_owned()));
    }
    Ok(entries)
}

/// Expands the `profile` parameter, if present: reads the named file
/// and fills every non-explicit parameter slot from its entries. A
/// no-op when the invocation carries no `profile`.
///
/// # Errors
///
/// [`ToolError`] with kind `Invalid` and a stable `PRF-V*` code: an
/// unreadable file (`PRF-V1`), a key the tool does not declare
/// (`PRF-V2`) or a value that does not parse (`PRF-V3`).
pub fn expand_profile(
    specs: &'static [ParamSpec],
    params: &mut ParamValues,
) -> Result<(), ToolError> {
    let Some(path) = params.opt_str("profile").map(str::to_owned) else {
        return Ok(());
    };
    let text = std::fs::read_to_string(&path)
        .map_err(|e| profile_error("PRF-V1", format!("cannot read profile `{path}`: {e}")))?;
    for (line, key, value) in parse_profile(&text, &path)? {
        if key == "profile" {
            return Err(profile_error(
                "PRF-V2",
                format!("{path}:{line}: profiles cannot nest (`profile` key)"),
            ));
        }
        let Some(spec) = find_spec(specs, &key) else {
            return Err(profile_error(
                "PRF-V2",
                format!("{path}:{line}: unknown key `{key}` for this tool"),
            ));
        };
        let parsed = spec.parse_text(&value).map_err(|e| {
            profile_error(
                "PRF-V3",
                format!("{path}:{line}: {} (`{key} = {value}`)", e),
            )
        })?;
        params.set_soft(spec.name, parsed);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{parse_cli, ParamKind};

    static SPECS: &[ParamSpec] = &[
        ParamSpec::new("patterns", ParamKind::Usize, Some("10000"), "pattern count"),
        ParamSpec::new("width", ParamKind::U32, Some("32"), "TAM width"),
        ParamSpec::new("stats", ParamKind::Bool, Some("false"), "print stats"),
        ParamSpec::new("profile", ParamKind::Str, None, "profile path"),
    ];

    fn write_profile(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).expect("temp dir is writable");
        path.to_string_lossy().into_owned()
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn profile_fills_defaults_but_not_explicit_flags() {
        let path = write_profile(
            "soctam_profile_basic.profile",
            "# comment\n\npatterns = 42\nwidth = 8\nstats = true\n",
        );
        let mut params =
            parse_cli(SPECS, &args(&["--profile", &path, "--width", "64"])).expect("parses");
        expand_profile(SPECS, &mut params).expect("expands");
        assert_eq!(params.usize("patterns"), 42, "profile beats the default");
        assert_eq!(params.u32("width"), 64, "flag beats the profile");
        assert!(params.bool("stats"), "bool values parse as text");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn no_profile_is_a_no_op() {
        let mut params = parse_cli(SPECS, &args(&["--width", "16"])).expect("parses");
        let before = params.clone();
        expand_profile(SPECS, &mut params).expect("no-op");
        assert_eq!(params, before);
    }

    #[test]
    fn missing_file_is_prf_v1() {
        let mut params =
            parse_cli(SPECS, &args(&["--profile", "/nonexistent/x.profile"])).expect("parses");
        let err = expand_profile(SPECS, &mut params).unwrap_err();
        assert_eq!(err.kind, ToolErrorKind::Invalid);
        assert_eq!(err.codes, vec!["PRF-V1".to_owned()]);
    }

    #[test]
    fn unknown_key_is_prf_v2_with_location() {
        let path = write_profile("soctam_profile_unknown.profile", "bogus = 3\n");
        let mut params = parse_cli(SPECS, &args(&["--profile", &path])).expect("parses");
        let err = expand_profile(SPECS, &mut params).unwrap_err();
        assert_eq!(err.codes, vec!["PRF-V2".to_owned()]);
        assert!(err.message.contains(":1:"), "{}", err.message);
        assert!(err.message.contains("bogus"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn nested_profile_is_rejected() {
        let path = write_profile("soctam_profile_nested.profile", "profile = other.profile\n");
        let mut params = parse_cli(SPECS, &args(&["--profile", &path])).expect("parses");
        let err = expand_profile(SPECS, &mut params).unwrap_err();
        assert_eq!(err.codes, vec!["PRF-V2".to_owned()]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_value_and_bad_syntax_are_prf_v3() {
        let path = write_profile("soctam_profile_badval.profile", "width = lots\n");
        let mut params = parse_cli(SPECS, &args(&["--profile", &path])).expect("parses");
        let err = expand_profile(SPECS, &mut params).unwrap_err();
        assert_eq!(err.codes, vec!["PRF-V3".to_owned()]);
        let _ = std::fs::remove_file(&path);

        let path = write_profile("soctam_profile_syntax.profile", "just words\n");
        let mut params = parse_cli(SPECS, &args(&["--profile", &path])).expect("parses");
        let err = expand_profile(SPECS, &mut params).unwrap_err();
        assert_eq!(err.codes, vec!["PRF-V3".to_owned()]);
        let _ = std::fs::remove_file(&path);
    }
}
