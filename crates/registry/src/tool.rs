//! The tool abstraction: one named pipeline operation with a declared
//! parameter schema, invokable from any front end.

use std::fmt;

use std::sync::Arc;

use soctam::exec::{CancelToken, Progress};
use soctam::{EvalCache, Pool, Soc, SoctamError};

use crate::json::Json;
use crate::param::{ParamSpec, ParamValues};

/// How a tool invocation failed; front ends map this to their surface
/// (CLI exit codes, HTTP status codes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ToolErrorKind {
    /// The request itself was malformed (unknown flag, bad value).
    /// CLI exit 2; HTTP 400.
    Usage,
    /// The inputs were well-formed but semantically invalid; carries
    /// stable diagnostic codes. CLI exit 1; HTTP 422.
    Invalid,
    /// The operation ran and failed. CLI exit 1; HTTP 500.
    Failed,
}

/// A structured tool failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToolError {
    /// Failure class.
    pub kind: ToolErrorKind,
    /// Human-readable description.
    pub message: String,
    /// Stable diagnostic codes (`SOC-V*`, `PAT-V*`, `SCH-V*`, ...) when
    /// the failure came from a validation pass; empty otherwise.
    pub codes: Vec<String>,
}

impl ToolError {
    /// A malformed-request error.
    pub fn usage(message: impl Into<String>) -> Self {
        ToolError {
            kind: ToolErrorKind::Usage,
            message: message.into(),
            codes: Vec::new(),
        }
    }

    /// A runtime failure.
    pub fn failed(message: impl Into<String>) -> Self {
        ToolError {
            kind: ToolErrorKind::Failed,
            message: message.into(),
            codes: Vec::new(),
        }
    }

    /// Maps a pipeline error, preserving validation diagnostic codes.
    pub fn from_soctam(err: &SoctamError) -> Self {
        if let SoctamError::Validation(diags) = err {
            return ToolError {
                kind: ToolErrorKind::Invalid,
                message: err.to_string(),
                codes: diags.items().iter().map(|d| d.code().to_owned()).collect(),
            };
        }
        ToolError::failed(err.to_string())
    }
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)?;
        if !self.codes.is_empty() {
            write!(f, " [{}]", self.codes.join(", "))?;
        }
        Ok(())
    }
}

impl std::error::Error for ToolError {}

/// What a successful tool invocation produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ToolOutput {
    /// The human-readable report (the CLI prints this verbatim; the
    /// server embeds it in the response JSON).
    pub text: String,
    /// Whether an optimization budget expired and the result is the
    /// best found so far rather than the converged answer.
    pub degraded: bool,
}

impl ToolOutput {
    /// A non-degraded output.
    pub fn text(text: String) -> Self {
        ToolOutput {
            text,
            degraded: false,
        }
    }
}

/// Execution context a front end hands to a tool: the worker pool and,
/// optionally, a shared evaluator cache that outlives the invocation
/// (the daemon keeps one warm across requests).
#[derive(Clone)]
pub struct ToolCtx {
    /// Worker pool; all parallel stages run on it.
    pub pool: Pool,
    /// Cross-invocation evaluator cache, if the front end keeps one.
    pub eval_cache: Option<EvalCache>,
    /// Progress sink the front end polls for a live display (the CLI
    /// `--progress` ticker). Tools publish into it when present; it is
    /// advisory and never changes results.
    pub progress: Option<Arc<Progress>>,
    /// Cooperative cancellation token. Tools that can degrade observe
    /// it at their budget checkpoints and return a best-so-far
    /// `degraded:true` output instead of an error once it trips.
    pub cancel: Option<CancelToken>,
}

impl ToolCtx {
    /// A context running on `pool` with no shared cache.
    pub fn new(pool: Pool) -> Self {
        ToolCtx {
            pool,
            eval_cache: None,
            progress: None,
            cancel: None,
        }
    }
}

/// The signature every tool implementation has.
pub type ToolFn = fn(&Soc, &ParamValues, &ToolCtx) -> Result<ToolOutput, ToolError>;

/// A registered pipeline operation.
#[derive(Clone)]
pub struct Tool {
    /// Tool name; doubles as the CLI subcommand and the server route
    /// segment (`POST /v1/tools/<name>`).
    pub name: &'static str,
    /// One-line summary for usage text and the schema.
    pub summary: &'static str,
    /// Declared parameters.
    pub params: &'static [ParamSpec],
    /// The implementation.
    pub run: ToolFn,
}

impl Tool {
    /// The tool's JSON schema: name, summary and parameter table.
    pub fn schema(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("summary", Json::str(self.summary)),
            (
                "params",
                Json::Arr(self.params.iter().map(ParamSpec::schema).collect()),
            ),
        ])
    }
}

/// A named collection of tools; the single source of truth both front
/// ends generate their surface from.
#[derive(Default)]
pub struct ToolRegistry {
    tools: Vec<Tool>,
}

impl ToolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ToolRegistry::default()
    }

    /// Adds a tool.
    ///
    /// # Panics
    ///
    /// On a duplicate name — registration happens once at startup from
    /// static tables, so a collision is a programming error, not a
    /// recoverable condition.
    pub fn register(&mut self, tool: Tool) {
        assert!(
            self.tools.iter().all(|t| t.name != tool.name),
            "duplicate tool name `{}`",
            tool.name
        );
        self.tools.push(tool);
    }

    /// Looks a tool up by name.
    pub fn get(&self, name: &str) -> Option<&Tool> {
        self.tools.iter().find(|tool| tool.name == name)
    }

    /// All tools, in registration order.
    pub fn tools(&self) -> &[Tool] {
        &self.tools
    }

    /// The full registry schema (`[{name, summary, params}, ...]`).
    pub fn schema(&self) -> Json {
        Json::Arr(self.tools.iter().map(Tool::schema).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamKind;

    static P: &[ParamSpec] = &[ParamSpec::new("n", ParamKind::U64, Some("1"), "a number")];

    fn dummy(_: &Soc, params: &ParamValues, _: &ToolCtx) -> Result<ToolOutput, ToolError> {
        Ok(ToolOutput::text(format!("n={}", params.u64("n"))))
    }

    fn registry() -> ToolRegistry {
        let mut reg = ToolRegistry::new();
        reg.register(Tool {
            name: "dummy",
            summary: "a test tool",
            params: P,
            run: dummy,
        });
        reg
    }

    #[test]
    fn lookup_and_schema_work() {
        let reg = registry();
        assert!(reg.get("dummy").is_some());
        assert!(reg.get("missing").is_none());
        let schema = reg.schema().render();
        assert!(schema.contains(r#""name":"dummy""#));
        assert!(schema.contains(r#""summary":"a test tool""#));
        assert!(schema.contains(r#""name":"n""#));
    }

    #[test]
    #[should_panic(expected = "duplicate tool name")]
    fn duplicate_registration_panics() {
        let mut reg = registry();
        reg.register(Tool {
            name: "dummy",
            summary: "again",
            params: P,
            run: dummy,
        });
    }

    #[test]
    fn tool_error_display_appends_codes() {
        let mut err = ToolError::failed("boom");
        assert_eq!(err.to_string(), "boom");
        err.codes = vec!["SOC-V1".into(), "SCH-V2".into()];
        assert_eq!(err.to_string(), "boom [SOC-V1, SCH-V2]");
    }
}
