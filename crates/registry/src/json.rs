//! A minimal, dependency-free JSON value: parser and renderer.
//!
//! The registry and the `soctam-serve` daemon exchange structured data as
//! JSON. The workspace is std-only, so this module hand-rolls the subset
//! we need: the full JSON data model, a strict recursive-descent parser
//! with a depth limit, and a compact deterministic renderer (objects
//! preserve insertion order; no HashMap anywhere, so rendering the same
//! value always produces the same bytes).

use std::fmt;

/// Maximum nesting depth accepted by [`Json::parse`]; hostile inputs
/// beyond this fail with an error instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Objects are ordered key/value vectors, not maps: field order is
/// preserved from parse to render, duplicate keys are rejected at parse
/// time, and rendering is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integral number (anything without `.`, `e` or `E`).
    Int(i128),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset and message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(entries: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            entries
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        )
    }

    /// Looks up a field of an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload as `u64`, if this is a non-negative integer
    /// in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object payload, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parses `text` as a single JSON document (trailing whitespace only).
    ///
    /// # Errors
    ///
    /// [`JsonError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data after JSON document"));
        }
        Ok(value)
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(n) => {
                let mut buf = itoa_buf();
                let _ = fmt::Write::write_fmt(&mut buf, format_args!("{n}"));
                out.push_str(&buf);
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let mut buf = itoa_buf();
                    let _ = fmt::Write::write_fmt(&mut buf, format_args!("{x}"));
                    // `{}` renders integral floats without a fraction
                    // ("2"); keep them recognisably floats.
                    if !buf.contains(['.', 'e', 'E']) {
                        buf.push_str(".0");
                    }
                    out.push_str(&buf);
                } else {
                    // JSON has no NaN/Inf; degrade to null rather than
                    // emit an unparseable document.
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn itoa_buf() -> String {
    String::with_capacity(24)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut entries: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: require `\uXXXX` low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            match ch {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // on char boundaries is safe via the str API).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest.get(..len).ok_or_else(|| self.err("truncated UTF-8"))?;
                    match std::str::from_utf8(chunk) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let Some(byte) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let digit = match byte {
                b'0'..=b'9' => u32::from(byte - b'0'),
                b'a'..=b'f' => u32::from(byte - b'a') + 10,
                b'A'..=b'F' => u32::from(byte - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err("number out of range"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let text = r#"{"a":[1,2.5,"x\n\"y\"",true,null],"b":{"c":-7}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.render(), text);
        assert_eq!(value.get("b").unwrap().get("c"), Some(&Json::Int(-7)));
    }

    #[test]
    fn object_field_order_is_preserved() {
        let value = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(value.render(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = Json::parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("depth"));
    }

    #[test]
    fn unicode_escapes_decode_including_surrogates() {
        let value = Json::parse(r#""é 😀""#).unwrap();
        assert_eq!(value, Json::Str("é 😀".to_owned()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn strings_escape_control_characters() {
        let rendered = Json::Str("a\u{01}b".to_owned()).render();
        assert_eq!(rendered, "\"a\\u0001b\"");
        assert_eq!(
            Json::parse(&rendered).unwrap(),
            Json::Str("a\u{01}b".to_owned())
        );
    }

    #[test]
    fn integral_floats_render_with_a_fraction() {
        assert_eq!(Json::Float(2.0).render(), "2.0");
        assert_eq!(Json::Int(2).render(), "2");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn accessors_are_type_checked() {
        let value = Json::parse(r#"{"n":3,"s":"x","b":true,"a":[]}"#).unwrap();
        assert_eq!(value.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("a").unwrap().as_arr(), Some(&[][..]));
        assert_eq!(value.get("n").unwrap().as_str(), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }
}
