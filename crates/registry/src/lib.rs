//! Schema-driven tool registry shared by the `soctam` CLI and the
//! `soctam-serve` daemon.
//!
//! Every pipeline operation (optimize, table, compact, ...) is declared
//! **once** as a [`Tool`]: a name, a one-line summary, a typed parameter
//! table and an implementation function. Both front ends are generated
//! from that single declaration:
//!
//! * the CLI turns each tool into a subcommand and each [`ParamSpec`]
//!   into a `--flag`, so there is no hand-maintained dispatch to drift
//!   out of sync;
//! * the daemon serves each tool at `POST /v1/tools/<name>` and accepts
//!   the same parameter names as JSON fields, publishing the whole
//!   schema at `GET /v1/tools`.
//!
//! Parsing either surface yields the same [`ParamValues`], so a tool
//! body cannot tell which front end invoked it — which is what makes
//! CLI-vs-server byte-parity testable.
//!
//! The crate also hosts the dependency-free [`Json`] value used by the
//! daemon's wire format (the workspace is std-only by policy).
//!
//! # Example
//!
//! ```
//! use soctam::Pool;
//! use soctam_registry::{parse_cli, standard_registry, ToolCtx};
//!
//! let tool = standard_registry().get("info").unwrap();
//! let params = parse_cli(tool.params, &[]).unwrap();
//! let soc = soctam_registry::resolve_soc("d695").unwrap();
//! let out = (tool.run)(&soc, &params, &ToolCtx::new(Pool::serial())).unwrap();
//! assert!(out.text.contains("d695"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
mod param;
mod profile;
mod tool;
mod tools;

pub use json::{Json, JsonError};
pub use param::{parse_cli, parse_json, ParamError, ParamKind, ParamSpec, ParamValue, ParamValues};
pub use profile::{expand_profile, parse_profile};
pub use tool::{Tool, ToolCtx, ToolError, ToolErrorKind, ToolFn, ToolOutput, ToolRegistry};
pub use tools::{budget_from, resolve_soc, resolve_soc_text, standard_registry};
