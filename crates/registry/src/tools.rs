//! The standard tool set: every pipeline operation the CLI and the
//! daemon expose, ported to the registry signature.
//!
//! Tool bodies are front-end-agnostic: they read typed parameters,
//! run on the context's pool and return a report string. Front-end
//! concerns stay outside — the CLI builds the pool from `--jobs` and
//! appends `--stats` output itself; the daemon keeps a warm shared
//! [`EvalCache`] in the context.

use std::fmt::Write as _;
use std::sync::OnceLock;

use soctam::experiment::{run_table_opts, ExperimentConfig, TableOpts};
use soctam::model::parser::{parse_soc, write_soc};
use soctam::tam::bounds::{intest_lower_bound, si_lower_bound};
use soctam::tam::{render_schedule, render_schedule_svg};
use soctam::{
    compact_two_dimensional_with, BackendKind, Benchmark, CompactionConfig, EvalCache, Objective,
    OptimizerBudget, RandomPatternConfig, SiGroupSpec, SiOptimizer, SiPatternSet, Soc, SoctamError,
};

use crate::param::{ParamKind, ParamSpec, ParamValues};
use crate::tool::{Tool, ToolCtx, ToolError, ToolOutput, ToolRegistry};

const PATTERNS: ParamSpec = ParamSpec::new(
    "patterns",
    ParamKind::Usize,
    Some("10000"),
    "raw SI pattern count N_r",
);
const WIDTH: ParamSpec = ParamSpec::new(
    "width",
    ParamKind::U32,
    Some("32"),
    "TAM width budget W_max",
);
const PARTITIONS: ParamSpec = ParamSpec::new(
    "partitions",
    ParamKind::U32,
    Some("4"),
    "SI partition count i",
);
const SEED: ParamSpec = ParamSpec::new("seed", ParamKind::U64, Some("2007"), "RNG seed");
const JOBS: ParamSpec = ParamSpec::new(
    "jobs",
    ParamKind::Usize,
    Some("1"),
    "worker threads (0 = all cores); CLI only — the daemon sizes its pool at startup",
);
const STATS: ParamSpec = ParamSpec::new(
    "stats",
    ParamKind::Bool,
    Some("false"),
    "print runtime statistics (tasks, steals, cache); CLI only",
);
const PROBE_JOBS: ParamSpec = ParamSpec::new(
    "probe-jobs",
    ParamKind::Usize,
    Some("1"),
    "threads for speculative candidate probing (0 = all cores); \
     bit-identical results at every value",
);
const PROFILE: ParamSpec = ParamSpec::new(
    "profile",
    ParamKind::Str,
    None,
    "key=value parameter file; explicit flags and fields win over it",
);
const PROGRESS: ParamSpec = ParamSpec::new(
    "progress",
    ParamKind::Bool,
    Some("false"),
    "live stderr ticker (phase, probes, best T_soc); CLI only, \
     silent when stdout is piped",
);
const BASELINE: ParamSpec = ParamSpec::new(
    "baseline",
    ParamKind::Bool,
    Some("false"),
    "optimize for InTest only (TR-Architect)",
);
const SVG: ParamSpec = ParamSpec::new(
    "svg",
    ParamKind::Str,
    None,
    "write the schedule as SVG to this path",
);
const WIDTHS: ParamSpec = ParamSpec::new(
    "widths",
    ParamKind::U32List,
    Some("8,16,24,32,40,48,56,64"),
    "width sweep",
);
const PARTS: ParamSpec = ParamSpec::new(
    "parts",
    ParamKind::U32List,
    Some("1,2,4,8"),
    "partition sweep",
);
const DEADLINE_MS: ParamSpec = ParamSpec::new(
    "deadline-ms",
    ParamKind::U64,
    None,
    "wall-clock budget for the TAM optimization; on expiry the best \
     architecture found so far is reported and flagged as degraded",
);
const MAX_ITERS: ParamSpec = ParamSpec::new(
    "max-iters",
    ParamKind::U64,
    None,
    "deterministic iteration budget for the TAM optimization",
);
const BACKEND: ParamSpec = ParamSpec::new(
    "backend",
    ParamKind::Enum(BackendKind::NAMES),
    Some("tr-architect"),
    "TAM-optimization backend: tr-architect (bandwidth matching, \
     Algorithm 2) or rect-pack (Pareto rectangle packing)",
);
const CACHE_CAP: ParamSpec = ParamSpec::new(
    "cache-cap",
    ParamKind::Usize,
    None,
    "bound the evaluator cache to this many entries (FIFO eviction); \
     ignored by the daemon, which sizes its shared cache at startup",
);

static INFO_PARAMS: &[ParamSpec] = &[];
static OPTIMIZE_PARAMS: &[ParamSpec] = &[
    PATTERNS,
    WIDTH,
    PARTITIONS,
    SEED,
    JOBS,
    PROBE_JOBS,
    STATS,
    PROGRESS,
    PROFILE,
    BASELINE,
    BACKEND,
    SVG,
    DEADLINE_MS,
    MAX_ITERS,
    CACHE_CAP,
];
static TABLE_PARAMS: &[ParamSpec] = &[
    PATTERNS, WIDTHS, PARTS, SEED, JOBS, PROBE_JOBS, STATS, PROGRESS, PROFILE, BACKEND, CACHE_CAP,
];
static COMPACT_PARAMS: &[ParamSpec] = &[PATTERNS, PARTITIONS, SEED, JOBS, STATS];
static EXPORT_PARAMS: &[ParamSpec] = &[];
static BOUNDS_PARAMS: &[ParamSpec] = &[PATTERNS, PARTITIONS, WIDTHS, SEED, JOBS];
static SIMULATE_PARAMS: &[ParamSpec] = &[PATTERNS, WIDTH, PARTITIONS, SEED, JOBS];

/// The registry both front ends are generated from.
pub fn standard_registry() -> &'static ToolRegistry {
    static REGISTRY: OnceLock<ToolRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut reg = ToolRegistry::new();
        reg.register(Tool {
            name: "info",
            summary: "print an SOC summary",
            params: INFO_PARAMS,
            run: info_tool,
        });
        reg.register(Tool {
            name: "optimize",
            summary: "run 2-D compaction + SI-aware TAM optimization",
            params: OPTIMIZE_PARAMS,
            run: optimize_tool,
        });
        reg.register(Tool {
            name: "table",
            summary: "run the paper's Table 2/3 sweep",
            params: TABLE_PARAMS,
            run: table_tool,
        });
        reg.register(Tool {
            name: "compact",
            summary: "run compaction only and report statistics",
            params: COMPACT_PARAMS,
            run: compact_tool,
        });
        reg.register(Tool {
            name: "export",
            summary: "write the SOC back out in ITC'02 .soc format",
            params: EXPORT_PARAMS,
            run: export_tool,
        });
        reg.register(Tool {
            name: "bounds",
            summary: "print architecture-independent lower bounds per width",
            params: BOUNDS_PARAMS,
            run: bounds_tool,
        });
        reg.register(Tool {
            name: "simulate",
            summary: "cross-check the timing model against the bit-level simulator",
            params: SIMULATE_PARAMS,
            run: simulate_tool,
        });
        reg
    })
}

/// Resolves a benchmark name or `.soc` path into an SOC.
///
/// # Errors
///
/// [`ToolError`] when the name is unknown or the file does not parse.
pub fn resolve_soc(spec: &str) -> Result<Soc, ToolError> {
    if let Ok(bench) = spec.parse::<Benchmark>() {
        return Ok(bench.soc());
    }
    let text = std::fs::read_to_string(spec)
        .map_err(|e| ToolError::failed(format!("cannot read `{spec}`: {e}")))?;
    resolve_soc_text(&text, spec)
}

/// Parses inline ITC'02 `.soc` text into an SOC (`origin` names the
/// source in error messages).
///
/// # Errors
///
/// [`ToolError`] when the text does not parse or validate.
pub fn resolve_soc_text(text: &str, origin: &str) -> Result<Soc, ToolError> {
    parse_soc(text)
        .and_then(|f| f.into_soc())
        .map_err(|e| ToolError::failed(format!("cannot parse `{origin}`: {e}")))
}

/// The optimizer budget the parameters describe (unlimited by default).
pub fn budget_from(params: &ParamValues) -> OptimizerBudget {
    let mut budget = OptimizerBudget::unlimited();
    if let Some(ms) = params.opt_u64("deadline-ms") {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(iters) = params.opt_u64("max-iters") {
        budget = budget.with_max_iterations(iters);
    }
    budget
}

/// The TAM-optimization backend the parameters select. The enum spec
/// already validated membership, so a parse failure here would be a
/// drift bug between [`BackendKind::NAMES`] and the spec — surfaced as
/// a usage error rather than a panic.
pub fn backend_from(params: &ParamValues) -> Result<BackendKind, ToolError> {
    match params.opt_str("backend") {
        None => Ok(BackendKind::default()),
        Some(name) => name
            .parse::<BackendKind>()
            .map_err(|e| ToolError::usage(e.to_string())),
    }
}

/// The evaluator cache an invocation runs with: the front end's shared
/// store when one is attached (the daemon), else a fresh bounded store
/// when `cache-cap` was given, else none (the optimizer's private
/// per-run cache).
fn effective_cache(params: &ParamValues, ctx: &ToolCtx) -> Option<EvalCache> {
    if let Some(cache) = &ctx.eval_cache {
        return Some(cache.clone());
    }
    params
        .opt_usize("cache-cap")
        .map(|cap| EvalCache::with_capacity_and_metrics(cap, ctx.pool.metrics()))
}

/// The probe pool an invocation runs with: `None` keeps speculative
/// candidate probing on the main pool's calling worker; any other
/// `probe-jobs` value gets its own pool (0 = all cores). Results are
/// bit-identical either way — probes are reduced in candidate order.
fn probe_pool_from(params: &ParamValues) -> Option<soctam::Pool> {
    match params.usize("probe-jobs") {
        1 => None,
        jobs => Some(soctam::Pool::new(jobs)),
    }
}

fn pipeline_err(err: impl Into<SoctamError>) -> ToolError {
    ToolError::from_soctam(&err.into())
}

/// For error types outside the pipeline's `SoctamError` family (tester,
/// wrapper): no diagnostic codes to preserve, message only.
fn runtime_err(err: impl std::fmt::Display) -> ToolError {
    ToolError::failed(err.to_string())
}

fn info_tool(soc: &Soc, _params: &ParamValues, _ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let mut out = String::new();
    let _ = writeln!(out, "{soc}");
    let _ = writeln!(
        out,
        "total InTest data volume: {} bits; total I/O: {}",
        soc.total_test_data_volume(),
        soc.total_io()
    );
    let _ = writeln!(
        out,
        "{:>4} {:>14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
        "id", "name", "in", "out", "bidir", "chains", "cells", "patterns"
    );
    for (id, core) in soc.iter() {
        let _ = writeln!(
            out,
            "{:>4} {:>14} {:>7} {:>7} {:>7} {:>7} {:>9} {:>10}",
            id.raw(),
            core.name(),
            core.inputs(),
            core.outputs(),
            core.bidirs(),
            core.scan_chains().len(),
            core.scan_cells(),
            core.patterns()
        );
    }
    Ok(ToolOutput::text(out))
}

fn export_tool(soc: &Soc, _params: &ParamValues, _ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    Ok(ToolOutput::text(write_soc(soc)))
}

fn optimize_tool(soc: &Soc, params: &ParamValues, ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let pool = &ctx.pool;
    let patterns = pool
        .metrics()
        .time("generate", || {
            SiPatternSet::random_with(
                soc,
                &RandomPatternConfig::new(params.usize("patterns")).with_seed(params.u64("seed")),
                pool,
            )
        })
        .map_err(pipeline_err)?;
    let objective = if params.bool("baseline") {
        Objective::InTestOnly
    } else {
        Objective::Total
    };
    let mut optimizer = SiOptimizer::new(soc)
        .max_tam_width(params.u32("width"))
        .partitions(params.u32("partitions"))
        .seed(params.u64("seed"))
        .objective(objective)
        .backend(backend_from(params)?)
        .budget(budget_from(params))
        .pool(pool.clone());
    if let Some(probe_pool) = probe_pool_from(params) {
        optimizer = optimizer.probe_pool(probe_pool);
    }
    if let Some(progress) = &ctx.progress {
        optimizer = optimizer.progress(std::sync::Arc::clone(progress));
    }
    if let Some(cache) = effective_cache(params, ctx) {
        optimizer = optimizer.eval_cache(cache);
    }
    if let Some(cancel) = &ctx.cancel {
        optimizer = optimizer.cancel(cancel.clone());
    }
    let result = optimizer.optimize(&patterns).map_err(pipeline_err)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: N_r={} -> {} compacted patterns in {} groups",
        soc.name(),
        params.usize("patterns"),
        result.compacted().total_patterns(),
        result.compacted().groups().len()
    );
    if result.degraded() {
        let _ = writeln!(
            out,
            "note: optimization budget exhausted; reporting the best \
             architecture found so far (degraded)"
        );
    }
    let _ = writeln!(out, "{}", result.architecture());
    let _ = writeln!(
        out,
        "{}",
        render_schedule(result.architecture(), result.evaluation())
    );
    if let Some(path) = params.opt_str("svg") {
        let svg = render_schedule_svg(result.architecture(), result.evaluation());
        std::fs::write(path, svg)
            .map_err(|e| ToolError::failed(format!("cannot write `{path}`: {e}")))?;
        let _ = writeln!(out, "schedule SVG written to {path}");
    }
    Ok(ToolOutput {
        text: out,
        degraded: result.degraded(),
    })
}

fn table_tool(soc: &Soc, params: &ParamValues, ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let config = ExperimentConfig {
        pattern_count: params.usize("patterns"),
        widths: params.u32_list("widths"),
        partitions: params.u32_list("parts"),
        seed: params.u64("seed"),
    };
    let opts = TableOpts {
        cache: effective_cache(params, ctx),
        probe_pool: probe_pool_from(params),
        progress: ctx.progress.clone(),
        cancel: ctx.cancel.clone(),
        backend: backend_from(params)?,
    };
    let table = run_table_opts(soc, &config, &ctx.pool, &opts).map_err(pipeline_err)?;
    Ok(ToolOutput::text(table.to_string()))
}

fn compact_tool(soc: &Soc, params: &ParamValues, ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let pool = &ctx.pool;
    let patterns = pool
        .metrics()
        .time("generate", || {
            SiPatternSet::random_with(
                soc,
                &RandomPatternConfig::new(params.usize("patterns")).with_seed(params.u64("seed")),
                pool,
            )
        })
        .map_err(pipeline_err)?;
    let compacted = pool
        .metrics()
        .time("compact", || {
            compact_two_dimensional_with(
                soc,
                &patterns,
                &CompactionConfig::new(params.u32("partitions")).with_seed(params.u64("seed")),
                pool,
            )
        })
        .map_err(pipeline_err)?;
    let stats = compacted.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} raw -> {} compacted (ratio {:.1}x), {} groups, cut weight {}",
        soc.name(),
        stats.raw_patterns,
        compacted.total_patterns(),
        stats.compaction_ratio(),
        compacted.groups().len(),
        stats.cut_weight
    );
    if stats.duplicate_patterns > 0 {
        let _ = writeln!(
            out,
            "  {} exact duplicates removed before compaction",
            stats.duplicate_patterns
        );
    }
    for (i, group) in compacted.groups().iter().enumerate() {
        let _ = writeln!(
            out,
            "  group {i}: {} cores, {} patterns",
            group.cores().len(),
            group.pattern_count()
        );
    }
    let _ = writeln!(out, "SI data volume: {} bits", compacted.data_volume(soc));
    Ok(ToolOutput::text(out))
}

fn bounds_tool(soc: &Soc, params: &ParamValues, ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let pool = &ctx.pool;
    let patterns = SiPatternSet::random_with(
        soc,
        &RandomPatternConfig::new(params.usize("patterns")).with_seed(params.u64("seed")),
        pool,
    )
    .map_err(pipeline_err)?;
    let compacted = compact_two_dimensional_with(
        soc,
        &patterns,
        &CompactionConfig::new(params.u32("partitions")).with_seed(params.u64("seed")),
        pool,
    )
    .map_err(pipeline_err)?;
    let groups = SiGroupSpec::from_compacted(&compacted);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: lower bounds (N_r = {}, i = {})",
        soc.name(),
        params.usize("patterns"),
        params.u32("partitions")
    );
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>12}",
        "Wmax", "LB(T_in)", "LB(T_si)", "LB(T_soc)"
    );
    for &w in &params.u32_list("widths") {
        let lb_in = intest_lower_bound(soc, w).map_err(runtime_err)?;
        let lb_si = si_lower_bound(soc, &groups, w).map_err(runtime_err)?;
        let _ = writeln!(
            out,
            "{:>6} {:>12} {:>12} {:>12}",
            w,
            lb_in,
            lb_si,
            lb_in + lb_si
        );
    }
    Ok(ToolOutput::text(out))
}

fn simulate_tool(soc: &Soc, params: &ParamValues, ctx: &ToolCtx) -> Result<ToolOutput, ToolError> {
    let pool = &ctx.pool;
    let patterns = SiPatternSet::random_with(
        soc,
        &RandomPatternConfig::new(params.usize("patterns")).with_seed(params.u64("seed")),
        pool,
    )
    .map_err(pipeline_err)?;
    let result = SiOptimizer::new(soc)
        .max_tam_width(params.u32("width"))
        .partitions(params.u32("partitions"))
        .seed(params.u64("seed"))
        .pool(pool.clone())
        .optimize(&patterns)
        .map_err(pipeline_err)?;
    let sim = soctam::tester::simulate(
        soc,
        result.architecture(),
        result.compacted().groups(),
        false,
    )
    .map_err(runtime_err)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "analytic : T_in = {} cc, T_si = {} cc",
        result.intest_time(),
        result.si_time()
    );
    let _ = writeln!(
        out,
        "simulated: T_in = {} cc, T_si = {} cc",
        sim.t_in, sim.t_si
    );
    let agree = sim.t_in == result.intest_time() && sim.t_si == result.si_time();
    let _ = writeln!(
        out,
        "{} ({} stimulus bits driven)",
        if agree {
            "model and bit-level simulation agree exactly"
        } else {
            "MISMATCH between model and simulation"
        },
        sim.bits_driven
    );
    if !agree {
        return Err(ToolError::failed(out));
    }
    Ok(ToolOutput::text(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::parse_cli;
    use soctam::Pool;

    fn ctx() -> ToolCtx {
        ToolCtx::new(Pool::serial())
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn invoke(tool: &str, soc: &Soc, flags: &[&str], ctx: &ToolCtx) -> ToolOutput {
        let tool = standard_registry().get(tool).expect("registered");
        let params = parse_cli(tool.params, &args(flags)).expect("parses");
        (tool.run)(soc, &params, ctx).expect("runs")
    }

    #[test]
    fn registry_lists_all_seven_tools() {
        let names: Vec<&str> = standard_registry().tools().iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            vec!["info", "optimize", "table", "compact", "export", "bounds", "simulate"]
        );
    }

    #[test]
    fn info_and_export_run_on_a_benchmark() {
        let soc = Benchmark::D695.soc();
        let info = invoke("info", &soc, &[], &ctx());
        assert!(info.text.contains("s38584"));
        assert!(!info.degraded);
        let export = invoke("export", &soc, &[], &ctx());
        assert!(resolve_soc_text(&export.text, "export").is_ok());
    }

    #[test]
    fn optimize_reports_degraded_through_the_output() {
        let soc = Benchmark::D695.soc();
        let out = invoke(
            "optimize",
            &soc,
            &["--patterns", "150", "--width", "8", "--max-iters", "1"],
            &ctx(),
        );
        assert!(out.degraded);
        assert!(out.text.contains("optimization budget exhausted"));
    }

    #[test]
    fn shared_cache_is_warm_across_invocations() {
        let soc = Benchmark::D695.soc();
        let cache = EvalCache::new();
        let mut ctx = ctx();
        ctx.eval_cache = Some(cache.clone());
        let flags = &["--patterns", "150", "--width", "8", "--partitions", "2"][..];
        let first = invoke("optimize", &soc, flags, &ctx);
        let warm = cache.len();
        assert!(warm > 0, "first run must populate the shared cache");
        let second = invoke("optimize", &soc, flags, &ctx);
        assert_eq!(first, second, "warm cache must not change the result");
        assert_eq!(cache.len(), warm, "identical request adds no entries");
    }

    #[test]
    fn backend_flag_selects_rect_pack_on_optimize_and_table() {
        let soc = Benchmark::D695.soc();
        let base = &["--patterns", "150", "--width", "8", "--partitions", "2"][..];
        let default_run = invoke("optimize", &soc, base, &ctx());
        let explicit = [base, &["--backend", "tr-architect"]].concat();
        assert_eq!(
            invoke("optimize", &soc, &explicit, &ctx()),
            default_run,
            "explicit tr-architect must equal the default"
        );
        let rect = [base, &["--backend", "rect-pack"]].concat();
        let rect_run = invoke("optimize", &soc, &rect, &ctx());
        assert!(rect_run.text.contains("T_soc"));
        let table = invoke(
            "table",
            &soc,
            &[
                "--patterns",
                "150",
                "--widths",
                "8",
                "--parts",
                "1",
                "--backend",
                "rect-pack",
            ],
            &ctx(),
        );
        assert!(table.text.contains("8"));
    }

    #[test]
    fn backend_schema_is_the_canonical_enum() {
        let tool = standard_registry().get("optimize").expect("registered");
        let spec = tool
            .params
            .iter()
            .find(|p| p.name == "backend")
            .expect("backend param declared");
        assert_eq!(spec.kind, ParamKind::Enum(BackendKind::NAMES));
        assert_eq!(spec.default, Some("tr-architect"));
        let schema = spec.schema().render();
        assert!(schema.contains(r#""values":["tr-architect","rect-pack"]"#));
    }

    #[test]
    fn resolve_soc_accepts_names_and_rejects_junk() {
        assert!(resolve_soc("d695").is_ok());
        let err = resolve_soc("/nonexistent/x.soc").unwrap_err();
        assert_eq!(err.kind, crate::tool::ToolErrorKind::Failed);
        assert!(resolve_soc_text("not an soc file", "inline").is_err());
    }
}
