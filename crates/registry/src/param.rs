//! Typed tool parameters: declarative specs, CLI and JSON parsing.
//!
//! Every tool in the registry declares its parameters once as a static
//! [`ParamSpec`] table. Both front ends derive their surface from that
//! table: the CLI turns each spec into a `--name <value>` flag, and the
//! server accepts the same names as JSON object fields. Parsing either
//! surface produces the same [`ParamValues`], so a tool body cannot tell
//! (and must not care) which front end invoked it.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::json::Json;

/// The type of a tool parameter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamKind {
    /// A `u64` (seeds, budgets).
    U64,
    /// A `u32` (widths, partition counts).
    U32,
    /// A `usize` (counts, capacities).
    Usize,
    /// A boolean flag; on the CLI it takes no value.
    Bool,
    /// A free-form string (file paths).
    Str,
    /// A comma-separated list of `u32` on the CLI; a JSON array of
    /// integers on the server.
    U32List,
    /// A string restricted to a fixed set of values. The allowed values
    /// are part of the spec (and the published schema), so the CLI flag
    /// and the JSON API enum cannot drift apart.
    Enum(&'static [&'static str]),
}

impl ParamKind {
    /// The schema name for this kind, as published by `/v1/tools`.
    pub fn type_name(self) -> &'static str {
        match self {
            ParamKind::U64 => "u64",
            ParamKind::U32 => "u32",
            ParamKind::Usize => "usize",
            ParamKind::Bool => "bool",
            ParamKind::Str => "string",
            ParamKind::U32List => "u32-list",
            ParamKind::Enum(_) => "enum",
        }
    }
}

/// A single declared parameter: name, type, default and help text.
#[derive(Clone, Copy, Debug)]
pub struct ParamSpec {
    /// Parameter name (dashed, e.g. `deadline-ms`); the CLI flag is
    /// `--<name>` and the JSON field is `<name>` verbatim.
    pub name: &'static str,
    /// Value type.
    pub kind: ParamKind,
    /// Default value in CLI text syntax; `None` makes the parameter
    /// optional with no default (absent unless supplied).
    pub default: Option<&'static str>,
    /// One-line help shown in usage text and the schema.
    pub help: &'static str,
}

impl ParamSpec {
    /// Declares a parameter.
    pub const fn new(
        name: &'static str,
        kind: ParamKind,
        default: Option<&'static str>,
        help: &'static str,
    ) -> Self {
        ParamSpec {
            name,
            kind,
            default,
            help,
        }
    }

    /// The JSON schema fragment for this parameter.
    pub fn schema(&self) -> Json {
        let mut fields = vec![
            ("name", Json::str(self.name)),
            ("type", Json::str(self.kind.type_name())),
        ];
        if let ParamKind::Enum(allowed) = self.kind {
            fields.push((
                "values",
                Json::Arr(allowed.iter().map(|v| Json::str(*v)).collect()),
            ));
        }
        match self.default {
            Some(d) => fields.push(("default", Json::str(d))),
            None => fields.push(("default", Json::Null)),
        }
        fields.push(("help", Json::str(self.help)));
        Json::obj(fields)
    }

    /// Parses a CLI-style text value against this spec.
    pub(crate) fn parse_text(&self, text: &str) -> Result<ParamValue, ParamError> {
        let bad = || ParamError::new(format!("invalid --{} value", self.name));
        match self.kind {
            ParamKind::U64 => text.parse().map(ParamValue::U64).map_err(|_| bad()),
            ParamKind::U32 => text.parse().map(ParamValue::U32).map_err(|_| bad()),
            ParamKind::Usize => text.parse().map(ParamValue::Usize).map_err(|_| bad()),
            ParamKind::Bool => match text {
                "true" => Ok(ParamValue::Bool(true)),
                "false" => Ok(ParamValue::Bool(false)),
                _ => Err(bad()),
            },
            ParamKind::Str => Ok(ParamValue::Str(text.to_owned())),
            ParamKind::U32List => text
                .split(',')
                .map(|part| part.trim().parse::<u32>().map_err(|_| bad()))
                .collect::<Result<Vec<u32>, ParamError>>()
                .map(ParamValue::U32List),
            ParamKind::Enum(allowed) => {
                if allowed.contains(&text) {
                    Ok(ParamValue::Str(text.to_owned()))
                } else {
                    Err(ParamError::new(format!(
                        "invalid --{} value `{text}` (expected one of: {})",
                        self.name,
                        allowed.join(", ")
                    )))
                }
            }
        }
    }

    /// Parses a JSON value against this spec.
    fn parse_json(&self, value: &Json) -> Result<ParamValue, ParamError> {
        let bad = || {
            ParamError::new(format!(
                "parameter `{}` must be a {}",
                self.name,
                self.kind.type_name()
            ))
        };
        match self.kind {
            ParamKind::U64 => value.as_u64().map(ParamValue::U64).ok_or_else(bad),
            ParamKind::U32 => value
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .map(ParamValue::U32)
                .ok_or_else(bad),
            ParamKind::Usize => value
                .as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .map(ParamValue::Usize)
                .ok_or_else(bad),
            ParamKind::Bool => value.as_bool().map(ParamValue::Bool).ok_or_else(bad),
            ParamKind::Str => value
                .as_str()
                .map(|s| ParamValue::Str(s.to_owned()))
                .ok_or_else(bad),
            ParamKind::U32List => {
                let items = value.as_arr().ok_or_else(bad)?;
                items
                    .iter()
                    .map(|item| {
                        item.as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(bad)
                    })
                    .collect::<Result<Vec<u32>, ParamError>>()
                    .map(ParamValue::U32List)
            }
            ParamKind::Enum(allowed) => {
                let text = value.as_str().ok_or_else(bad)?;
                if allowed.contains(&text) {
                    Ok(ParamValue::Str(text.to_owned()))
                } else {
                    Err(ParamError::new(format!(
                        "parameter `{}` must be one of: {}",
                        self.name,
                        allowed.join(", ")
                    )))
                }
            }
        }
    }
}

/// A parsed parameter value.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamValue {
    /// A `u64`.
    U64(u64),
    /// A `u32`.
    U32(u32),
    /// A `usize`.
    Usize(usize),
    /// A boolean.
    Bool(bool),
    /// A string.
    Str(String),
    /// A list of `u32`.
    U32List(Vec<u32>),
}

/// A parameter parse failure (maps to a usage error on the CLI and a
/// 400 response on the server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamError {
    /// Human-readable description.
    pub message: String,
}

impl ParamError {
    fn new(message: impl Into<String>) -> Self {
        ParamError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParamError {}

/// The parameter values a tool invocation received, defaults included.
///
/// Accessors return the kind's zero value when a name is absent or of a
/// different kind; for values produced by [`parse_cli`] / [`parse_json`]
/// against the same spec table that a tool declared, this is unreachable
/// — defaults are seeded before user input is applied.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParamValues {
    map: BTreeMap<&'static str, ParamValue>,
    /// Names whose value came from user input (CLI flag, JSON field or
    /// [`ParamValues::set`]) rather than a spec default. Profiles fill
    /// only non-explicit slots, so the precedence is always
    /// defaults < profile < explicit input.
    explicit: BTreeSet<&'static str>,
}

impl ParamValues {
    /// Seeds values with every spec's default.
    ///
    /// # Errors
    ///
    /// [`ParamError`] when a spec's default text does not parse (a
    /// programming error in a spec table, surfaced loudly).
    pub fn defaults(specs: &'static [ParamSpec]) -> Result<Self, ParamError> {
        let mut values = ParamValues::default();
        for spec in specs {
            if let Some(default) = spec.default {
                values.map.insert(spec.name, spec.parse_text(default)?);
            }
        }
        Ok(values)
    }

    /// Sets a value directly (used by front ends for derived settings).
    /// Counts as explicit input: a profile never overrides it.
    pub fn set(&mut self, name: &'static str, value: ParamValue) {
        self.map.insert(name, value);
        self.explicit.insert(name);
    }

    /// Sets a value without marking it explicit (profile entries: they
    /// beat spec defaults but lose to flags and JSON fields).
    pub(crate) fn set_soft(&mut self, name: &'static str, value: ParamValue) {
        if !self.explicit.contains(name) {
            self.map.insert(name, value);
        }
    }

    /// Whether `name` was supplied by user input (not defaulted).
    pub fn was_explicit(&self, name: &str) -> bool {
        self.explicit.contains(name)
    }

    /// Whether `name` was supplied or defaulted.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(name)
    }

    /// A `u64` parameter.
    pub fn u64(&self, name: &str) -> u64 {
        match self.map.get(name) {
            Some(ParamValue::U64(v)) => *v,
            _ => 0,
        }
    }

    /// A `u32` parameter.
    pub fn u32(&self, name: &str) -> u32 {
        match self.map.get(name) {
            Some(ParamValue::U32(v)) => *v,
            _ => 0,
        }
    }

    /// A `usize` parameter.
    pub fn usize(&self, name: &str) -> usize {
        match self.map.get(name) {
            Some(ParamValue::Usize(v)) => *v,
            _ => 0,
        }
    }

    /// A boolean parameter.
    pub fn bool(&self, name: &str) -> bool {
        matches!(self.map.get(name), Some(ParamValue::Bool(true)))
    }

    /// A list parameter.
    pub fn u32_list(&self, name: &str) -> Vec<u32> {
        match self.map.get(name) {
            Some(ParamValue::U32List(v)) => v.clone(),
            _ => Vec::new(),
        }
    }

    /// An optional `u64` parameter (no default declared).
    pub fn opt_u64(&self, name: &str) -> Option<u64> {
        match self.map.get(name) {
            Some(ParamValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// An optional `usize` parameter (no default declared).
    pub fn opt_usize(&self, name: &str) -> Option<usize> {
        match self.map.get(name) {
            Some(ParamValue::Usize(v)) => Some(*v),
            _ => None,
        }
    }

    /// An optional string parameter (no default declared).
    pub fn opt_str(&self, name: &str) -> Option<&str> {
        match self.map.get(name) {
            Some(ParamValue::Str(s)) => Some(s),
            _ => None,
        }
    }
}

pub(crate) fn find_spec(specs: &'static [ParamSpec], name: &str) -> Option<&'static ParamSpec> {
    specs.iter().find(|spec| spec.name == name)
}

/// Parses CLI arguments (`--name value` / bare `--flag` for booleans)
/// against a spec table. Unknown flags are errors; `--help` is NOT
/// handled here — front ends intercept it before parsing.
///
/// # Errors
///
/// [`ParamError`] on unknown flags, missing values or bad values.
pub fn parse_cli(specs: &'static [ParamSpec], args: &[String]) -> Result<ParamValues, ParamError> {
    let mut values = ParamValues::defaults(specs)?;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let Some(name) = arg.strip_prefix("--") else {
            return Err(ParamError::new(format!(
                "unexpected argument `{arg}` (try --help)"
            )));
        };
        let Some(spec) = find_spec(specs, name) else {
            return Err(ParamError::new(format!(
                "unknown option `--{name}` (try --help)"
            )));
        };
        if spec.kind == ParamKind::Bool {
            values.set(spec.name, ParamValue::Bool(true));
            continue;
        }
        let Some(text) = iter.next() else {
            return Err(ParamError::new(format!("--{name} needs a value")));
        };
        let value = spec.parse_text(text)?;
        values.set(spec.name, value);
    }
    Ok(values)
}

/// Parses a JSON object's fields against a spec table. Unknown fields
/// are errors (strict by design: a typo'd field silently ignored would
/// change results without warning).
///
/// # Errors
///
/// [`ParamError`] on non-object input, unknown fields or bad values.
pub fn parse_json(specs: &'static [ParamSpec], params: &Json) -> Result<ParamValues, ParamError> {
    let mut values = ParamValues::defaults(specs)?;
    let entries = match params {
        Json::Null => &[][..],
        other => other
            .as_obj()
            .ok_or_else(|| ParamError::new("`params` must be a JSON object"))?,
    };
    for (name, value) in entries {
        let Some(spec) = find_spec(specs, name) else {
            return Err(ParamError::new(format!("unknown parameter `{name}`")));
        };
        let value = spec.parse_json(value)?;
        values.set(spec.name, value);
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    static SPECS: &[ParamSpec] = &[
        ParamSpec::new("patterns", ParamKind::Usize, Some("10000"), "pattern count"),
        ParamSpec::new("width", ParamKind::U32, Some("32"), "TAM width"),
        ParamSpec::new("stats", ParamKind::Bool, Some("false"), "print stats"),
        ParamSpec::new("widths", ParamKind::U32List, Some("8,16"), "width sweep"),
        ParamSpec::new("deadline-ms", ParamKind::U64, None, "wall-clock budget"),
        ParamSpec::new("svg", ParamKind::Str, None, "SVG output path"),
        ParamSpec::new(
            "mode",
            ParamKind::Enum(&["fast", "exact"]),
            Some("fast"),
            "strategy",
        ),
    ];

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn cli_parsing_applies_defaults_and_overrides() {
        let values = parse_cli(SPECS, &args(&["--patterns", "42", "--stats"])).unwrap();
        assert_eq!(values.usize("patterns"), 42);
        assert_eq!(values.u32("width"), 32);
        assert!(values.bool("stats"));
        assert_eq!(values.u32_list("widths"), vec![8, 16]);
        assert_eq!(values.opt_u64("deadline-ms"), None);
        assert_eq!(values.opt_str("svg"), None);
    }

    #[test]
    fn cli_unknown_flag_and_missing_value_fail() {
        assert!(parse_cli(SPECS, &args(&["--bogus"])).is_err());
        assert!(parse_cli(SPECS, &args(&["--width"])).is_err());
        assert!(parse_cli(SPECS, &args(&["loose"])).is_err());
        assert!(parse_cli(SPECS, &args(&["--width", "x"])).is_err());
    }

    #[test]
    fn json_parsing_matches_cli_parsing() {
        let from_cli = parse_cli(
            SPECS,
            &args(&["--patterns", "7", "--widths", "8,24", "--svg", "out.svg"]),
        )
        .unwrap();
        let from_json = parse_json(
            SPECS,
            &Json::parse(r#"{"patterns":7,"widths":[8,24],"svg":"out.svg"}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(from_cli, from_json);
    }

    #[test]
    fn json_unknown_field_is_strictly_rejected() {
        let err = parse_json(SPECS, &Json::parse(r#"{"patern":7}"#).unwrap()).unwrap_err();
        assert!(err.message.contains("patern"));
    }

    #[test]
    fn json_type_mismatch_is_rejected() {
        assert!(parse_json(SPECS, &Json::parse(r#"{"patterns":"7"}"#).unwrap()).is_err());
        assert!(parse_json(SPECS, &Json::parse(r#"{"widths":[-3]}"#).unwrap()).is_err());
        assert!(parse_json(SPECS, &Json::parse("[]").unwrap()).is_err());
        assert!(parse_json(SPECS, &Json::Null).is_ok());
    }

    #[test]
    fn schema_reports_name_type_default_help() {
        let schema = SPECS[0].schema().render();
        assert!(schema.contains(r#""name":"patterns""#));
        assert!(schema.contains(r#""type":"usize""#));
        assert!(schema.contains(r#""default":"10000""#));
    }

    #[test]
    fn enum_values_are_validated_on_both_surfaces() {
        let values = parse_cli(SPECS, &args(&["--mode", "exact"])).unwrap();
        assert_eq!(values.opt_str("mode"), Some("exact"));
        let defaulted = parse_cli(SPECS, &args(&[])).unwrap();
        assert_eq!(defaulted.opt_str("mode"), Some("fast"));
        let err = parse_cli(SPECS, &args(&["--mode", "slow"])).unwrap_err();
        assert!(err.message.contains("fast, exact"), "{}", err.message);
        let from_json = parse_json(SPECS, &Json::parse(r#"{"mode":"exact"}"#).unwrap()).unwrap();
        assert_eq!(from_json.opt_str("mode"), Some("exact"));
        assert!(parse_json(SPECS, &Json::parse(r#"{"mode":"slow"}"#).unwrap()).is_err());
        assert!(parse_json(SPECS, &Json::parse(r#"{"mode":3}"#).unwrap()).is_err());
    }

    #[test]
    fn enum_schema_publishes_the_allowed_values() {
        let schema = SPECS[6].schema().render();
        assert!(schema.contains(r#""type":"enum""#));
        assert!(schema.contains(r#""values":["fast","exact"]"#));
        assert!(schema.contains(r#""default":"fast""#));
    }
}
