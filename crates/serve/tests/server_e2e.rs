//! End-to-end daemon tests: an in-process server on an ephemeral port,
//! driven through the std-only client — the same path the CI smoke job
//! exercises against the release binary.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam_registry::{standard_registry, Json};
use soctam_serve::{client, Server, ServerConfig};

/// Starts a daemon on an ephemeral port; returns its address and the
/// accept-loop handle (joined after `POST /admin/shutdown`).
fn start(jobs: usize, max_inflight: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        jobs,
        max_inflight,
        cache_cap: 1 << 20,
        ..ServerConfig::default()
    })
    .expect("binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    (addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
    let response = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

fn output_field(body: &str) -> String {
    Json::parse(body)
        .expect("response is JSON")
        .get("output")
        .expect("has output")
        .as_str()
        .expect("output is a string")
        .to_owned()
}

#[test]
fn tools_endpoint_publishes_the_registry_schema() {
    let (addr, handle) = start(1, 0);
    let response = client::get(&addr, "/v1/tools").unwrap();
    assert_eq!(response.status, 200);
    let listed = Json::parse(&response.body).unwrap();
    // Byte-for-byte the registry's own schema: CLI subcommands and
    // server routes cannot drift apart.
    assert_eq!(listed.get("tools").unwrap(), &standard_registry().schema());
    stop(&addr, handle);
}

#[test]
fn tools_schema_declares_the_backend_enum() {
    let (addr, handle) = start(1, 0);
    let response = client::get(&addr, "/v1/tools").unwrap();
    assert_eq!(response.status, 200);
    // The optimize/table tools publish `backend` as a closed enum, so
    // API clients see the same value set the CLI accepts.
    assert!(response.body.contains(r#""name":"backend""#));
    assert!(response.body.contains(r#""type":"enum""#));
    assert!(response
        .body
        .contains(r#""values":["tr-architect","rect-pack"]"#));
    assert!(response.body.contains(r#""default":"tr-architect""#));
    stop(&addr, handle);
}

#[test]
fn cli_and_server_reports_are_byte_identical() {
    let (addr, handle) = start(1, 0);
    // One golden per benchmark: d695 (optimize, both backends) and
    // p34392 (optimize).
    for (soc, body, cli_args) in [
        (
            "d695",
            r#"{"soc":"d695","params":{"patterns":300,"width":16,"partitions":2}}"#,
            vec![
                "optimize",
                "d695",
                "--patterns",
                "300",
                "--width",
                "16",
                "--partitions",
                "2",
            ],
        ),
        (
            "d695",
            r#"{"soc":"d695","params":{"patterns":300,"width":16,"partitions":2,"backend":"rect-pack"}}"#,
            vec![
                "optimize",
                "d695",
                "--patterns",
                "300",
                "--width",
                "16",
                "--partitions",
                "2",
                "--backend",
                "rect-pack",
            ],
        ),
        (
            "p34392",
            r#"{"soc":"p34392","params":{"patterns":200,"width":16}}"#,
            vec!["optimize", "p34392", "--patterns", "200", "--width", "16"],
        ),
    ] {
        let via_cli = soctam_cli::run(&cli_args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
            .expect("CLI runs");
        let response = client::post(&addr, "/v1/tools/optimize", body).unwrap();
        assert_eq!(response.status, 200, "{soc}: {}", response.body);
        // Identical modulo the request ID (which lives outside `output`).
        assert_eq!(output_field(&response.body), via_cli, "{soc}");
        let parsed = Json::parse(&response.body).unwrap();
        assert!(parsed
            .get("request_id")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with('r'));
        assert_eq!(parsed.get("degraded").unwrap(), &Json::Bool(false));
    }
    // /metrics counts each request under the backend it ran with.
    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().body).unwrap();
    let backends = metrics.get("backends").unwrap();
    let runs = |name: &str| backends.get(name).unwrap().as_u64().unwrap();
    assert_eq!(runs("tr-architect"), 2);
    assert_eq!(runs("rect-pack"), 1);
    stop(&addr, handle);
}

#[test]
fn concurrent_clients_get_deterministic_results_at_any_pool_size() {
    let body = r#"{"soc":"d695","params":{"patterns":200,"width":8,"partitions":2}}"#;
    let mut reference: Option<String> = None;
    for jobs in [1usize, 4, 8] {
        let (addr, handle) = start(jobs, 0);
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || {
                    let response = client::post(&addr, "/v1/tools/optimize", body).unwrap();
                    assert_eq!(response.status, 200, "{}", response.body);
                    output_field(&response.body)
                })
            })
            .collect();
        for client_thread in clients {
            let output = client_thread.join().unwrap();
            match &reference {
                Some(expected) => assert_eq!(&output, expected, "jobs={jobs}"),
                None => reference = Some(output),
            }
        }
        stop(&addr, handle);
    }
}

#[test]
fn per_request_deadline_degrades_to_best_so_far() {
    let (addr, handle) = start(1, 0);
    let response = client::post(
        &addr,
        "/v1/tools/optimize",
        r#"{"soc":"d695","params":{"patterns":200,"width":8,"max-iters":1},"deadline_ms":60000}"#,
    )
    .unwrap();
    assert_eq!(response.status, 200, "{}", response.body);
    let parsed = Json::parse(&response.body).unwrap();
    assert_eq!(parsed.get("degraded").unwrap(), &Json::Bool(true));
    assert!(output_field(&response.body).contains("optimization budget exhausted"));

    // deadline_ms is rejected on tools that cannot degrade.
    let response =
        client::post(&addr, "/v1/tools/info", r#"{"soc":"d695","deadline_ms":5}"#).unwrap();
    assert_eq!(response.status, 400, "{}", response.body);
    stop(&addr, handle);
}

#[test]
fn malformed_requests_get_structured_errors_with_stable_codes() {
    let (addr, handle) = start(1, 0);

    // Broken JSON → 400 usage.
    let r = client::post(&addr, "/v1/tools/optimize", "{nope").unwrap();
    assert_eq!(r.status, 400, "{}", r.body);
    let kind = |body: &str| {
        Json::parse(body)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned()
    };
    assert_eq!(kind(&r.body), "usage");

    // Unknown tool → 404.
    let r = client::post(&addr, "/v1/tools/frobnicate", r#"{"soc":"d695"}"#).unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(kind(&r.body), "not-found");

    // Unknown parameter → 400 (strict schema, same as the CLI).
    let r = client::post(
        &addr,
        "/v1/tools/optimize",
        r#"{"soc":"d695","params":{"patern":7}}"#,
    )
    .unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body.contains("patern"));

    // Missing SOC → 400.
    let r = client::post(&addr, "/v1/tools/optimize", "{}").unwrap();
    assert_eq!(r.status, 400);

    // Unresolvable SOC → 422 invalid.
    let r = client::post(&addr, "/v1/tools/info", r#"{"soc":"/nonexistent/x.soc"}"#).unwrap();
    assert_eq!(r.status, 422);
    assert_eq!(kind(&r.body), "invalid");

    // Inline SOC text that fails validation → 422 with SOC-V* codes.
    let r = client::post(&addr, "/v1/tools/info", r#"{"soc_text":"not an soc file"}"#).unwrap();
    assert_eq!(r.status, 422, "{}", r.body);

    // Unknown route → 404.
    let r = client::get(&addr, "/v2/everything").unwrap();
    assert_eq!(r.status, 404);

    stop(&addr, handle);
}

#[test]
fn inline_soc_text_matches_the_embedded_benchmark() {
    let (addr, handle) = start(1, 0);
    let export = client::post(&addr, "/v1/tools/export", r#"{"soc":"d695"}"#).unwrap();
    assert_eq!(export.status, 200);
    let soc_text = output_field(&export.body);
    let body = Json::obj(vec![
        ("soc_text", Json::str(soc_text)),
        (
            "params",
            Json::parse(r#"{"patterns":200,"width":8}"#).unwrap(),
        ),
    ])
    .render();
    let via_text = client::post(&addr, "/v1/tools/optimize", &body).unwrap();
    assert_eq!(via_text.status, 200, "{}", via_text.body);
    assert!(output_field(&via_text.body).contains("T_soc"));
    stop(&addr, handle);
}

#[test]
fn cross_request_cache_hits_show_up_in_metrics() {
    let (addr, handle) = start(1, 0);
    let body = r#"{"soc":"d695","params":{"patterns":200,"width":8,"partitions":2}}"#;
    let cache_stats = |addr: &str| {
        let metrics = Json::parse(&client::get(addr, "/metrics").unwrap().body).unwrap();
        let entries = metrics
            .get("cache")
            .unwrap()
            .get("entries")
            .unwrap()
            .as_u64()
            .unwrap();
        let hits = metrics
            .get("pool")
            .unwrap()
            .get("cache_hits")
            .unwrap()
            .as_u64()
            .unwrap();
        (entries, hits)
    };

    let first = client::post(&addr, "/v1/tools/optimize", body).unwrap();
    assert_eq!(first.status, 200);
    let (entries_after_first, hits_after_first) = cache_stats(&addr);
    assert!(
        entries_after_first > 0,
        "first run must warm the shared cache"
    );

    // The optimizer probes candidates even with a serial probe pool, so
    // one optimize request must surface the speculative-probe counters.
    let pool = Json::parse(&client::get(&addr, "/metrics").unwrap().body).unwrap();
    let pool = pool.get("pool").unwrap().clone();
    let counter = |name: &str| pool.get(name).unwrap().as_u64().unwrap();
    assert!(
        counter("speculative_probes") > 0,
        "an optimize run must record speculative probes"
    );
    assert!(
        counter("probe_batches") > 0,
        "an optimize run must record probe batches"
    );
    let _ = counter("probe_wasted"); // present (zero on a fault-free run)

    let second = client::post(&addr, "/v1/tools/optimize", body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(output_field(&second.body), output_field(&first.body));
    let (entries_after_second, hits_after_second) = cache_stats(&addr);
    assert_eq!(
        entries_after_second, entries_after_first,
        "an identical request adds no cache entries"
    );
    assert!(
        hits_after_second > hits_after_first,
        "the second request must be served (partly) from the warm cache"
    );
    stop(&addr, handle);
}
