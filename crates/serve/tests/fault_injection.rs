//! Daemon behavior under injected faults and admission pressure.
//!
//! Failpoints are process-global, so every test here serializes on one
//! mutex — a fault armed for one test must never leak into another
//! running concurrently.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Mutex;
use std::time::Duration;

use soctam_exec::fault::{FaultAction, ScopedFault};
use soctam_registry::Json;
use soctam_serve::{client, Server, ServerConfig};

static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn start(jobs: usize, max_inflight: usize) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        jobs,
        max_inflight,
        cache_cap: 1 << 20,
        ..ServerConfig::default()
    })
    .expect("binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    (addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
    let response = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

#[test]
fn admission_control_rejects_the_overflow_with_a_structured_429() {
    let _serial = serialize();
    let (addr, handle) = start(1, 1);
    // Hold the single slot open by delaying dispatch of the first job.
    let _fault = ScopedFault::new(
        "serve.dispatch",
        FaultAction::Delay(Duration::from_millis(800)),
    );
    let first = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            client::post(&addr, "/v1/tools/info", r#"{"soc":"d695"}"#).unwrap()
        })
    };
    std::thread::sleep(Duration::from_millis(200));
    let second = client::post(&addr, "/v1/tools/info", r#"{"soc":"d695"}"#).unwrap();
    assert_eq!(second.status, 429, "{}", second.body);
    let parsed = Json::parse(&second.body).unwrap();
    let error = parsed.get("error").unwrap();
    assert_eq!(error.get("kind").unwrap().as_str(), Some("rejected"));
    assert!(parsed.get("request_id").is_some());

    let first = first.join().unwrap();
    assert_eq!(first.status, 200, "the admitted job still completes");

    let metrics = Json::parse(&client::get(&addr, "/metrics").unwrap().body).unwrap();
    let rejected = metrics.get("server").unwrap().get("rejected").unwrap();
    assert_eq!(rejected.as_u64(), Some(1));
    stop(&addr, handle);
}

#[test]
fn accept_failpoint_yields_a_structured_503_not_a_hang() {
    let _serial = serialize();
    let (addr, handle) = start(1, 0);
    {
        let _fault = ScopedFault::new("serve.accept", FaultAction::Error);
        let response = client::get(&addr, "/healthz").unwrap();
        assert_eq!(response.status, 503, "{}", response.body);
        let parsed = Json::parse(&response.body).unwrap();
        assert_eq!(
            parsed.get("error").unwrap().get("kind").unwrap().as_str(),
            Some("unavailable")
        );
        assert!(response.body.contains("serve.accept"));
    }
    // The daemon recovers once the fault is cleared.
    let response = client::get(&addr, "/healthz").unwrap();
    assert_eq!(response.status, 200);
    stop(&addr, handle);
}

#[test]
fn dispatch_failpoint_yields_a_structured_500() {
    let _serial = serialize();
    let (addr, handle) = start(1, 0);
    {
        let _fault = ScopedFault::new("serve.dispatch", FaultAction::Error);
        let response = client::post(&addr, "/v1/tools/info", r#"{"soc":"d695"}"#).unwrap();
        assert_eq!(response.status, 500, "{}", response.body);
        assert!(response.body.contains("serve.dispatch"));
    }
    stop(&addr, handle);
}

#[test]
fn tool_panics_are_contained_to_a_500_response() {
    let _serial = serialize();
    let (addr, handle) = start(1, 0);
    {
        // A panic-action failpoint inside the pipeline must not take the
        // connection thread (or the daemon) down with it: either the
        // pipeline boundary converts it to a structured failure or the
        // dispatch catch_unwind does.
        let _fault = ScopedFault::new("exec.cache.lookup", FaultAction::Panic);
        let response = client::post(
            &addr,
            "/v1/tools/optimize",
            r#"{"soc":"d695","params":{"patterns":100,"width":8}}"#,
        )
        .unwrap();
        assert_eq!(response.status, 500, "{}", response.body);
        let kind = Json::parse(&response.body)
            .unwrap()
            .get("error")
            .unwrap()
            .get("kind")
            .unwrap()
            .as_str()
            .unwrap()
            .to_owned();
        assert!(
            kind == "internal" || kind == "failed",
            "unexpected error kind `{kind}`"
        );
    }
    let response = client::get(&addr, "/healthz").unwrap();
    assert_eq!(response.status, 200, "daemon survives the panic");
    stop(&addr, handle);
}
