//! End-to-end tests for the async job subsystem: lifecycle, bounded
//! queue, cooperative cancellation and journal replay/rerun
//! determinism — all against an in-process daemon.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use soctam_exec::fault::{FaultAction, ScopedFault};
use soctam_registry::Json;
use soctam_serve::journal::Journal;
use soctam_serve::{client, RecoverMode, Server, ServerConfig};

/// The failpoint registry is process-global; tests that arm it (or
/// depend on it being clear) run serialized.
static SERIAL: Mutex<()> = Mutex::new(());

fn serialize() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn start(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    (addr, handle)
}

fn default_config() -> ServerConfig {
    ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    }
}

fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
    let response = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("soctam-jobs-api-{name}-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn submit(addr: &str, tool: &str, request: &str) -> client::ClientResponse {
    let body = format!(r#"{{"tool":"{tool}","request":{request}}}"#);
    client::post(addr, "/v1/jobs", &body).expect("submit")
}

fn job_doc(addr: &str, job: &str) -> Json {
    let response = client::get(addr, &format!("/v1/jobs/{job}")).expect("status");
    assert_eq!(response.status, 200, "{}", response.body);
    Json::parse(&response.body).expect("status is JSON")
}

fn state_of(doc: &Json) -> String {
    doc.get("state")
        .and_then(Json::as_str)
        .expect("has state")
        .to_owned()
}

/// Polls until the job reaches `wanted` (or any terminal state when
/// `wanted` is "terminal"); panics after the deadline — the watchdog
/// that catches hangs.
fn wait_for_state(addr: &str, job: &str, wanted: &str, deadline: Duration) -> Json {
    let until = Instant::now() + deadline;
    loop {
        let doc = job_doc(addr, job);
        let state = state_of(&doc);
        let hit = match wanted {
            "terminal" => matches!(state.as_str(), "done" | "failed" | "cancelled"),
            other => state == other,
        };
        if hit {
            return doc;
        }
        assert!(
            Instant::now() < until,
            "job {job} stuck in `{state}` waiting for `{wanted}`"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

const OPTIMIZE_REQ: &str = r#"{"soc":"d695","params":{"patterns":200,"width":8,"partitions":2}}"#;

#[test]
fn job_lifecycle_reaches_done_with_the_sync_result_body() {
    let _serial = serialize();
    let (addr, handle) = start(default_config());

    // The job result must byte-match the synchronous envelope minus its
    // volatile request_id.
    let sync = client::post(&addr, "/v1/tools/optimize", OPTIMIZE_REQ).expect("sync run");
    assert_eq!(sync.status, 200, "{}", sync.body);
    let mut sync_doc = Json::parse(&sync.body).expect("sync JSON");
    if let Json::Obj(fields) = &mut sync_doc {
        fields.retain(|(k, _)| k != "request_id");
    }

    let accepted = submit(&addr, "optimize", OPTIMIZE_REQ);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let accepted_doc = Json::parse(&accepted.body).expect("accept JSON");
    let job = accepted_doc
        .get("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned();
    assert_eq!(state_of(&accepted_doc), "queued");

    let done = wait_for_state(&addr, &job, "done", Duration::from_secs(120));
    assert_eq!(done.get("status").unwrap(), &Json::Int(200));
    assert_eq!(
        done.get("result").expect("has result").render(),
        sync_doc.render(),
        "job body matches the sync envelope"
    );

    // The list endpoint and the metrics section both see the job.
    let list = client::get(&addr, "/v1/jobs").expect("list");
    assert!(list.body.contains(&job), "{}", list.body);
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    let metrics_doc = Json::parse(&metrics.body).expect("metrics JSON");
    let jobs = metrics_doc.get("jobs").expect("jobs section");
    assert_eq!(jobs.get("submitted").unwrap(), &Json::Int(1));
    assert_eq!(jobs.get("completed").unwrap(), &Json::Int(1));
    assert_eq!(jobs.get("queue_depth").unwrap(), &Json::Int(0));
    assert_eq!(jobs.get("running").unwrap(), &Json::Int(0));

    stop(&addr, handle);
}

#[test]
fn bounded_queue_rejects_overflow_with_429_and_retry_after() {
    let _serial = serialize();
    // One worker held in a long serve.job delay + queue capacity 1:
    // the third submission must overflow deterministically.
    let _hold = ScopedFault::new("serve.job", FaultAction::Delay(Duration::from_secs(5)));
    let (addr, handle) = start(ServerConfig {
        queue_cap: 1,
        job_workers: 1,
        ..default_config()
    });

    let first = submit(&addr, "info", r#"{"soc":"d695"}"#);
    assert_eq!(first.status, 202, "{}", first.body);
    // Wait until the worker owns the first job, so the queue is empty.
    wait_for_state(&addr, "j1", "running", Duration::from_secs(30));

    let second = submit(&addr, "info", r#"{"soc":"d695"}"#);
    assert_eq!(second.status, 202, "{}", second.body);
    let third = submit(&addr, "info", r#"{"soc":"d695"}"#);
    assert_eq!(third.status, 429, "{}", third.body);
    assert_eq!(third.retry_after, Some(1), "429 carries Retry-After");
    assert!(third.body.contains("queue is full"), "{}", third.body);

    // Unknown tools are rejected before touching the queue.
    let unknown = submit(&addr, "frobnicate", "{}");
    assert_eq!(unknown.status, 404, "{}", unknown.body);

    stop(&addr, handle);
}

#[test]
fn cancelling_a_running_job_degrades_to_best_so_far() {
    let _serial = serialize();
    // Hold the job in the pre-dispatch serve.job window so the cancel
    // deterministically lands while it is `running`; the optimizer then
    // starts with a tripped token and returns its incumbent, degraded.
    let _hold = ScopedFault::new("serve.job", FaultAction::Delay(Duration::from_millis(500)));
    let (addr, handle) = start(default_config());

    let accepted = submit(&addr, "optimize", OPTIMIZE_REQ);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    wait_for_state(&addr, "j1", "running", Duration::from_secs(30));

    let cancel = client::request(&addr, "DELETE", "/v1/jobs/j1", "").expect("cancel");
    assert_eq!(cancel.status, 202, "{}", cancel.body);

    let doc = wait_for_state(&addr, "j1", "terminal", Duration::from_secs(120));
    assert_eq!(state_of(&doc), "cancelled");
    assert_eq!(doc.get("status").unwrap(), &Json::Int(200));
    let result = doc.get("result").expect("best-so-far result attached");
    assert_eq!(
        result.get("degraded").unwrap(),
        &Json::Bool(true),
        "{}",
        result.render()
    );
    // A second cancel is a structured conflict, not a surprise.
    let again = client::request(&addr, "DELETE", "/v1/jobs/j1", "").expect("re-cancel");
    assert_eq!(again.status, 409, "{}", again.body);

    stop(&addr, handle);
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let _serial = serialize();
    let _hold = ScopedFault::new("serve.job", FaultAction::Delay(Duration::from_secs(2)));
    let (addr, handle) = start(ServerConfig {
        job_workers: 1,
        ..default_config()
    });

    let first = submit(&addr, "info", r#"{"soc":"d695"}"#);
    assert_eq!(first.status, 202);
    wait_for_state(&addr, "j1", "running", Duration::from_secs(30));
    let second = submit(&addr, "info", r#"{"soc":"d695"}"#);
    assert_eq!(second.status, 202);

    let cancel = client::request(&addr, "DELETE", "/v1/jobs/j2", "").expect("cancel");
    assert_eq!(
        cancel.status, 200,
        "queued cancel is immediate: {}",
        cancel.body
    );
    let doc = job_doc(&addr, "j2");
    assert_eq!(state_of(&doc), "cancelled");

    stop(&addr, handle);
}

#[test]
fn journal_replay_restores_terminal_results_and_reruns_bit_identically() {
    let _serial = serialize();
    let path = temp_journal("replay-rerun");

    // Run 1: journaled daemon computes the baseline result.
    let (addr, handle) = start(ServerConfig {
        journal: Some(path.clone()),
        ..default_config()
    });
    let accepted = submit(&addr, "optimize", OPTIMIZE_REQ);
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let done = wait_for_state(&addr, "j1", "done", Duration::from_secs(120));
    let baseline = done.get("result").expect("baseline result").render();
    stop(&addr, handle);

    // Run 2: replay restores the terminal result without re-executing.
    let (addr, handle) = start(ServerConfig {
        journal: Some(path.clone()),
        ..default_config()
    });
    let doc = job_doc(&addr, "j1");
    assert_eq!(state_of(&doc), "done");
    assert_eq!(doc.get("result").unwrap().render(), baseline);
    assert_eq!(doc.get("recovered").unwrap(), &Json::Bool(false));
    stop(&addr, handle);

    // Simulate an interrupted job: a `submitted` record with no
    // terminal record (exactly what a crash mid-run leaves behind).
    {
        let (journal, _) = Journal::open(&path).expect("journal reopens");
        journal
            .append(
                &Json::obj(vec![
                    ("rec", Json::str("submitted")),
                    ("job", Json::Int(2)),
                    ("tool", Json::str("optimize")),
                    ("body", Json::str(OPTIMIZE_REQ)),
                ]),
                true,
            )
            .expect("appends");
    }

    // Run 3: --recover=rerun re-executes it to a bit-identical result.
    let (addr, handle) = start(ServerConfig {
        journal: Some(path.clone()),
        recover: RecoverMode::Rerun,
        ..default_config()
    });
    let doc = wait_for_state(&addr, "j2", "done", Duration::from_secs(120));
    assert_eq!(doc.get("recovered").unwrap(), &Json::Bool(true));
    assert_eq!(
        doc.get("result").unwrap().render(),
        baseline,
        "rerun reproduces the baseline bit-identically"
    );
    let metrics = client::get(&addr, "/metrics").expect("metrics");
    let metrics_doc = Json::parse(&metrics.body).expect("metrics JSON");
    assert_eq!(
        metrics_doc.get("jobs").unwrap().get("recovered").unwrap(),
        &Json::Int(1)
    );
    stop(&addr, handle);

    // Interrupted again, but --recover=mark fails it without a re-run.
    {
        let (journal, _) = Journal::open(&path).expect("journal reopens");
        journal
            .append(
                &Json::obj(vec![
                    ("rec", Json::str("submitted")),
                    ("job", Json::Int(3)),
                    ("tool", Json::str("optimize")),
                    ("body", Json::str(OPTIMIZE_REQ)),
                ]),
                true,
            )
            .expect("appends");
    }
    let (addr, handle) = start(ServerConfig {
        journal: Some(path.clone()),
        recover: RecoverMode::Mark,
        ..default_config()
    });
    let doc = job_doc(&addr, "j3");
    assert_eq!(state_of(&doc), "failed");
    assert!(
        doc.render().contains("interrupted by daemon restart"),
        "{}",
        doc.render()
    );
    stop(&addr, handle);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn shutdown_drains_the_queue_and_cancels_queued_jobs() {
    let _serial = serialize();
    let _hold = ScopedFault::new("serve.job", FaultAction::Delay(Duration::from_millis(300)));
    let (addr, handle) = start(ServerConfig {
        job_workers: 1,
        ..default_config()
    });
    submit(&addr, "info", r#"{"soc":"d695"}"#);
    wait_for_state(&addr, "j1", "running", Duration::from_secs(30));
    submit(&addr, "info", r#"{"soc":"d695"}"#);

    // Shutdown joins every worker; afterwards nothing is left running.
    stop(&addr, handle);
}
