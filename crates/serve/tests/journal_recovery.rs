//! Crash-recovery test against the real `soctam-serve` binary:
//! `kill -9` mid-optimization, restart with `--journal`, and the
//! interrupted job re-runs to a bit-identical result.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use soctam_registry::Json;
use soctam_serve::client;

const OPTIMIZE_REQ: &str = r#"{"soc":"d695","params":{"patterns":200,"width":8,"partitions":2}}"#;

fn temp_journal(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "soctam-journal-recovery-{name}-{}.wal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

/// Spawns the daemon and scrapes its resolved address from stdout.
fn spawn_daemon(journal: &Path, failpoints: &str) -> (Child, String) {
    let mut command = Command::new(env!("CARGO_BIN_EXE_soctam-serve"));
    command
        .args([
            "--listen",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--journal",
            journal.to_str().expect("utf-8 path"),
            "--recover",
            "rerun",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if failpoints.is_empty() {
        command.env_remove("SOCTAM_FAILPOINTS");
    } else {
        command.env("SOCTAM_FAILPOINTS", failpoints);
    }
    let mut child = command.spawn().expect("daemon spawns");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon prints its address")
            .expect("stdout readable");
        if let Some(addr) = line.strip_prefix("soctam-serve listening on ") {
            break addr.to_owned();
        }
    };
    (child, addr)
}

fn submit_job(addr: &str) -> String {
    let body = format!(r#"{{"tool":"optimize","request":{OPTIMIZE_REQ}}}"#);
    let response = client::post(addr, "/v1/jobs", &body).expect("submit");
    assert_eq!(response.status, 202, "{}", response.body);
    Json::parse(&response.body)
        .expect("accept JSON")
        .get("job")
        .and_then(Json::as_str)
        .expect("job id")
        .to_owned()
}

fn wait_for_state(addr: &str, job: &str, wanted: &str, deadline: Duration) -> Json {
    let until = Instant::now() + deadline;
    loop {
        let response = client::get(addr, &format!("/v1/jobs/{job}")).expect("status");
        assert_eq!(response.status, 200, "{}", response.body);
        let doc = Json::parse(&response.body).expect("status JSON");
        let state = doc
            .get("state")
            .and_then(Json::as_str)
            .expect("has state")
            .to_owned();
        if state == wanted {
            return doc;
        }
        assert!(
            Instant::now() < until,
            "job {job} stuck in `{state}` waiting for `{wanted}`"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn shutdown(addr: &str, mut child: Child) {
    let response = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    let status = child.wait().expect("daemon exits");
    assert!(status.success(), "daemon exits 0, got {status:?}");
}

#[test]
fn kill_nine_mid_job_recovers_to_a_bit_identical_result() {
    let journal = temp_journal("kill9");

    // Baseline: a clean journaled run of the same request.
    let (child, addr) = spawn_daemon(&journal, "");
    let job = submit_job(&addr);
    let done = wait_for_state(&addr, &job, "done", Duration::from_secs(120));
    let baseline = done.get("result").expect("baseline result").render();
    shutdown(&addr, child);
    let _ = std::fs::remove_file(&journal);

    // Crash run: a serve.job delay holds the job in `running` long
    // enough to SIGKILL the daemon mid-flight — the journal has the
    // job's `submitted`/`started` records but no terminal record.
    let (mut child, addr) = spawn_daemon(&journal, "serve.job=delay:10000");
    let job = submit_job(&addr);
    wait_for_state(&addr, &job, "running", Duration::from_secs(30));
    child.kill().expect("SIGKILL delivered");
    let _ = child.wait();

    // Restart on the same journal with --recover=rerun (and no
    // failpoints): the interrupted job re-runs to the baseline bytes.
    let (child, addr) = spawn_daemon(&journal, "");
    let doc = wait_for_state(&addr, &job, "done", Duration::from_secs(120));
    assert_eq!(
        doc.get("recovered").expect("marked recovered"),
        &Json::Bool(true)
    );
    assert_eq!(
        doc.get("result").expect("recovered result").render(),
        baseline,
        "recovered re-run reproduces the baseline bit-identically"
    );

    // The journal now carries the terminal record: one more restart
    // serves the result without re-running anything.
    shutdown(&addr, child);
    let (child, addr) = spawn_daemon(&journal, "");
    let doc = wait_for_state(&addr, &job, "done", Duration::from_secs(30));
    assert_eq!(
        doc.get("result").expect("replayed result").render(),
        baseline
    );
    shutdown(&addr, child);

    let _ = std::fs::remove_file(&journal);
}
