//! Seeded chaos-soak harness: randomized fault injection across every
//! failpoint site under a mixed sync + async workload.
//!
//! Invariants checked every round:
//! * the daemon never hangs (every wait carries a watchdog deadline);
//! * no in-flight admission slot leaks (the gauge returns to 0);
//! * injected panics cost at most one request/job, never a worker or
//!   the daemon;
//! * every submitted job reaches a terminal state;
//! * jobs that complete `done` under chaos produce bodies
//!   byte-identical to a fault-free baseline run;
//! * the write-ahead journal stays cleanly framed (a replay after the
//!   soak reports zero corruption).
//!
//! The fault plan is driven by `soctam_exec::Rng` from
//! `SOCTAM_CHAOS_SEED` (default 20260807), so a failing soak reproduces
//! exactly. `SOCTAM_CHAOS_ROUNDS` scales the soak length.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

use soctam_exec::fault::{self, FaultAction};
use soctam_exec::Rng;
use soctam_registry::Json;
use soctam_serve::journal::Journal;
use soctam_serve::{client, Server, ServerConfig};

/// Every failpoint site in the workspace; the soak must cover at least
/// ten (the ISSUE floor) and this list is the exhaustive fifteen.
const SITES: &[&str] = &[
    "compaction.bucket",
    "compaction.partition",
    "exec.cache.lookup",
    "exec.pool.task",
    "model.parse",
    "patterns.generate.random",
    "serve.accept",
    "serve.dispatch",
    "serve.job",
    "serve.journal",
    "tam.merge",
    "tam.probe",
    "tam.rail_eval",
    "tam.rectpack",
    "tam.schedule",
];

/// The workload mix: (tool, request body) shapes whose fault-free
/// results are the byte-identity baseline.
const SHAPES: &[(&str, &str)] = &[
    (
        "optimize",
        r#"{"soc":"d695","params":{"patterns":100,"width":8,"partitions":2}}"#,
    ),
    (
        "optimize",
        r#"{"soc":"d695","params":{"patterns":100,"width":8,"partitions":2,"backend":"rect-pack"}}"#,
    ),
    ("info", r#"{"soc":"d695"}"#),
    ("bounds", r#"{"soc":"d695","params":{"patterns":100}}"#),
];

const WATCHDOG: Duration = Duration::from_secs(120);

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn temp_journal() -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("soctam-chaos-soak-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn start(journal: Option<PathBuf>) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind(&ServerConfig {
        listen: "127.0.0.1:0".to_owned(),
        jobs: 2,
        queue_cap: 64,
        job_workers: 2,
        journal,
        ..ServerConfig::default()
    })
    .expect("binds");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("serves"));
    (addr, handle)
}

fn stop(addr: &str, handle: std::thread::JoinHandle<()>) {
    let response = client::post(addr, "/admin/shutdown", "").expect("shutdown");
    assert_eq!(response.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

/// Strips the volatile `request_id` from a sync envelope.
fn envelope_without_id(body: &str) -> Option<String> {
    match Json::parse(body) {
        Ok(Json::Obj(mut fields)) => {
            fields.retain(|(k, _)| k != "request_id");
            Some(Json::Obj(fields).render())
        }
        _ => None,
    }
}

fn job_state(addr: &str, job: &str) -> Option<(String, Json)> {
    let response = client::get(addr, &format!("/v1/jobs/{job}")).ok()?;
    if response.status != 200 {
        return None;
    }
    let doc = Json::parse(&response.body).ok()?;
    let state = doc.get("state")?.as_str()?.to_owned();
    Some((state, doc))
}

/// Waits until every job in `jobs` is terminal; the watchdog deadline
/// is the no-hang invariant.
fn await_terminal(addr: &str, jobs: &[(String, usize)]) -> Vec<(usize, String, Json)> {
    let until = Instant::now() + WATCHDOG;
    let mut out = Vec::new();
    for (job, shape) in jobs {
        loop {
            // Status polls themselves can be refused by serve.accept
            // faults; keep polling — the watchdog bounds the wait.
            if let Some((state, doc)) = job_state(addr, job) {
                if matches!(state.as_str(), "done" | "failed" | "cancelled") {
                    out.push((*shape, state, doc));
                    break;
                }
            }
            assert!(
                Instant::now() < until,
                "watchdog: job {job} not terminal after {WATCHDOG:?}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    out
}

fn random_action(rng: &mut Rng) -> FaultAction {
    match rng.below(3) {
        0 => FaultAction::Error,
        1 => FaultAction::Panic,
        _ => FaultAction::Delay(Duration::from_millis(5 + rng.below(16))),
    }
}

#[test]
fn chaos_soak_keeps_every_invariant_under_randomized_faults() {
    let seed = env_u64("SOCTAM_CHAOS_SEED", 20_260_807);
    let rounds = env_u64("SOCTAM_CHAOS_ROUNDS", 4);
    let journal_path = temp_journal();
    eprintln!(
        "chaos soak: seed={seed} rounds={rounds} journal={}",
        journal_path.display()
    );
    fault::reset();

    // Fault-free baseline: one sync result per workload shape.
    let (addr, handle) = start(None);
    let mut baseline: Vec<String> = Vec::new();
    for (tool, request) in SHAPES {
        let response =
            client::post(&addr, &format!("/v1/tools/{tool}"), request).expect("baseline run");
        assert_eq!(response.status, 200, "{}", response.body);
        baseline.push(envelope_without_id(&response.body).expect("baseline envelope"));
    }
    stop(&addr, handle);

    let (addr, handle) = start(Some(journal_path.clone()));
    let mut rng = Rng::derive(seed, 0);
    let mut done_under_chaos = 0u64;

    for round in 0..rounds {
        // Arm 3..=6 random sites with random actions and activation
        // skips; every arming decision comes from the seeded stream.
        let armed = 3 + rng.below(4) as usize;
        let mut plan: Vec<(&str, FaultAction, u64)> = Vec::new();
        for _ in 0..armed {
            let site = SITES[rng.below(SITES.len() as u64) as usize];
            let action = random_action(&mut rng);
            let skip = rng.below(4);
            plan.push((site, action, skip));
        }
        eprintln!("round {round}: arming {plan:?}");
        // `tam.probe` is a tolerated-degradation site: the optimizer
        // skips a failed probe and keeps searching, so a request that
        // still returns 200 under a probe error took a different —
        // legitimately different — search path. Byte-identity against
        // the fault-free baseline only holds in rounds without it.
        let probe_diverges = plan.iter().any(|(site, action, _)| {
            *site == "tam.probe" && !matches!(action, FaultAction::Delay(_))
        });
        for (site, action, skip) in &plan {
            fault::set_after(*site, *action, *skip);
        }

        // Mixed workload: async submissions (some cancelled), sync
        // invocations, status polls.
        let mut jobs: Vec<(String, usize)> = Vec::new();
        for k in 0..6u64 {
            let shape = rng.below(SHAPES.len() as u64) as usize;
            let (tool, request) = SHAPES[shape];
            let body = format!(r#"{{"tool":"{tool}","request":{request}}}"#);
            match client::post(&addr, "/v1/jobs", &body) {
                Ok(response) if response.status == 202 => {
                    let job = Json::parse(&response.body)
                        .ok()
                        .and_then(|doc| doc.get("job").and_then(Json::as_str).map(str::to_owned));
                    if let Some(job) = job {
                        // Cancel roughly a third of submissions.
                        if rng.below(3) == 0 {
                            let _ =
                                client::request(&addr, "DELETE", &format!("/v1/jobs/{job}"), "");
                        }
                        jobs.push((job, shape));
                    }
                }
                // 429/503 rejections and accept-fault connection drops
                // are legitimate chaos outcomes.
                Ok(_) | Err(_) => {}
            }
            let shape = rng.below(SHAPES.len() as u64) as usize;
            let (tool, request) = SHAPES[shape];
            if let Ok(response) = client::post(&addr, &format!("/v1/tools/{tool}"), request) {
                if response.status == 200 && !probe_diverges {
                    if let Some(envelope) = envelope_without_id(&response.body) {
                        assert_eq!(
                            envelope, baseline[shape],
                            "round {round} req {k}: sync 200 under chaos must match baseline"
                        );
                    }
                }
            }
        }

        // Disarm, then require the system to settle: every job
        // terminal, nothing leaked.
        fault::reset();
        let settled = await_terminal(&addr, &jobs);
        for (shape, state, doc) in settled {
            if state == "done" {
                done_under_chaos += 1;
                if !probe_diverges {
                    let result = doc.get("result").expect("done job has a result").render();
                    assert_eq!(
                        result, baseline[shape],
                        "round {round}: done job body must match the fault-free baseline"
                    );
                }
            }
        }
        // The admission gauge returns to zero once quiescent: no
        // leaked in-flight slots even across injected panics.
        let until = Instant::now() + WATCHDOG;
        loop {
            let health = client::get(&addr, "/healthz").expect("healthz");
            let doc = Json::parse(&health.body).expect("healthz JSON");
            if doc.get("inflight") == Some(&Json::Int(1)) {
                // This very request occupies no slot; inflight counts
                // tool invocations only.
            }
            if doc.get("inflight") == Some(&Json::Int(0)) {
                break;
            }
            assert!(Instant::now() < until, "watchdog: inflight never drained");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    // The soak must exercise the happy path too, or byte-identity was
    // never really tested.
    assert!(
        done_under_chaos > 0,
        "no job completed `done` across {rounds} rounds; seed {seed} too hostile"
    );

    let metrics = client::get(&addr, "/metrics").expect("metrics");
    let doc = Json::parse(&metrics.body).expect("metrics JSON");
    let jobs_section = doc.get("jobs").expect("jobs section");
    assert_eq!(jobs_section.get("running").unwrap(), &Json::Int(0));
    assert_eq!(jobs_section.get("queue_depth").unwrap(), &Json::Int(0));
    eprintln!("chaos soak metrics: {}", jobs_section.render());

    stop(&addr, handle);

    // The journal survived every injected journal fault cleanly: a
    // full replay parses with zero corruption.
    let (_, replay) = Journal::open(&journal_path).expect("journal reopens");
    assert_eq!(replay.corrupt, 0, "journal framing survived the soak");
    assert!(!replay.torn_tail, "clean shutdown leaves no torn tail");
    assert!(!replay.records.is_empty(), "the soak journaled job traffic");

    let _ = std::fs::remove_file(&journal_path);
}
