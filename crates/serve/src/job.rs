//! The asynchronous job subsystem: a bounded FIFO of registry tool
//! invocations executed by background workers, with cooperative
//! cancellation, checkpointed progress and a write-ahead journal.
//!
//! State machine (journal record in parentheses):
//!
//! ```text
//!            submit (submitted)
//!                |
//!             queued ----------- cancel ------------.
//!                |                                  |
//!          worker picks up (started)                |
//!                |                                  v
//!             running --- cancel: token trips --> cancelled
//!             |     |        (degraded best-so-far result)
//!   tool ok (done)  tool error / panic (failed)
//! ```
//!
//! `done`, `failed` and `cancelled` are terminal; their journal
//! records are fsynced before the state is visible to clients, so an
//! acknowledged outcome survives `kill -9`. A job that was `queued`
//! or `running` when the daemon died is *interrupted*; on restart the
//! journal replay either re-enqueues it (`--recover=rerun` — the
//! pipeline is deterministic, so the re-run reproduces a bit-identical
//! result) or marks it failed (`--recover=mark`).

use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use soctam_exec::{CancelToken, Progress};
use soctam_registry::{standard_registry, Json};

use crate::journal::{Journal, Replay};

/// How restart recovery treats jobs the previous process left
/// unfinished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RecoverMode {
    /// Re-enqueue interrupted jobs; the deterministic pipeline re-runs
    /// them to bit-identical results.
    #[default]
    Rerun,
    /// Mark interrupted jobs failed (`interrupted by daemon restart`)
    /// without re-executing them.
    Mark,
}

/// Lifecycle states; see the module docs for the transitions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum JobState {
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A finished invocation: HTTP-ish status plus the response envelope
/// (which never contains a request ID — job bodies must be
/// byte-identical across runs and restarts).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct JobResult {
    pub(crate) status: u16,
    pub(crate) body: String,
}

/// One tracked job.
#[derive(Debug)]
struct Job {
    tool: String,
    body: String,
    state: JobState,
    cancel: CancelToken,
    progress: Arc<Progress>,
    result: Option<JobResult>,
    cancel_requested: bool,
    recovered: bool,
    /// Iteration count at the last journaled checkpoint.
    checkpointed: u64,
    /// The TAM backend this job runs with (`None` for tools without a
    /// backend parameter); echoed in the job's progress object.
    backend: Option<String>,
}

impl Job {
    fn new(tool: String, body: String) -> Job {
        let backend = backend_of(&tool, &body);
        Job {
            tool,
            body,
            state: JobState::Queued,
            cancel: CancelToken::new(),
            progress: Arc::new(Progress::new()),
            result: None,
            cancel_requested: false,
            recovered: false,
            checkpointed: 0,
            backend,
        }
    }
}

/// The backend a job will run with: the body's explicit
/// `params.backend` when present, else the tool's declared default;
/// `None` for tools that take no backend parameter. Derived the same
/// way on fresh submission and on journal replay, so recovered jobs
/// echo the same backend.
fn backend_of(tool: &str, body: &str) -> Option<String> {
    let spec = standard_registry()
        .get(tool)?
        .params
        .iter()
        .find(|p| p.name == "backend")?;
    Json::parse(body)
        .ok()
        .and_then(|v| {
            v.get("params")
                .and_then(|p| p.get("backend"))
                .and_then(Json::as_str)
                .map(str::to_owned)
        })
        .or_else(|| spec.default.map(str::to_owned))
}

#[derive(Debug, Default)]
struct Table {
    jobs: BTreeMap<u64, Job>,
    queue: VecDeque<u64>,
    next_id: u64,
}

/// Why a submission was turned away.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SubmitRejected {
    /// The bounded queue is full — HTTP 429 with `Retry-After`.
    QueueFull,
    /// The daemon is draining for shutdown — HTTP 503.
    Draining,
}

/// The outcome of a cancellation request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum CancelOutcome {
    /// No such job.
    NotFound,
    /// The job was still queued; it is now terminally cancelled.
    CancelledQueued,
    /// The token tripped; the running job will degrade to its
    /// best-so-far result and land in `cancelled`.
    Requested,
    /// The job had already reached a terminal state.
    AlreadyTerminal(&'static str),
}

/// What a worker executes: everything needed to run one job outside
/// any lock.
#[derive(Debug)]
pub(crate) struct WorkItem {
    pub(crate) id: u64,
    pub(crate) tool: String,
    pub(crate) body: String,
    pub(crate) cancel: CancelToken,
    pub(crate) progress: Arc<Progress>,
}

/// The job manager: table + bounded queue + journal + counters.
///
/// Locking discipline: the table mutex is never held across a journal
/// append (the journal has its own lock); workers block on the table's
/// condvar.
#[derive(Debug)]
pub(crate) struct JobManager {
    table: Mutex<Table>,
    work: Condvar,
    queue_cap: usize,
    journal: Option<Journal>,
    draining: AtomicBool,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    recovered: AtomicU64,
    journal_errors: AtomicU64,
}

impl JobManager {
    /// A manager with no journal (in-memory lifecycle only).
    pub(crate) fn new(queue_cap: usize) -> JobManager {
        JobManager {
            table: Mutex::new(Table::default()),
            work: Condvar::new(),
            queue_cap,
            journal: None,
            draining: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            journal_errors: AtomicU64::new(0),
        }
    }

    /// A journaled manager: applies `replay`, then recovers
    /// interrupted jobs per `mode`.
    pub(crate) fn with_journal(
        queue_cap: usize,
        journal: Journal,
        replay: &Replay,
        mode: RecoverMode,
    ) -> JobManager {
        let mut manager = JobManager::new(queue_cap);
        manager.journal = Some(journal);
        manager.apply_replay(replay, mode);
        manager
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Table> {
        self.table.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Rebuilds the table from replayed records and resolves
    /// interrupted jobs. Runs before any worker exists, so the
    /// single-threaded mutations are safe.
    fn apply_replay(&mut self, replay: &Replay, mode: RecoverMode) {
        let mut interrupted: Vec<u64> = Vec::new();
        {
            let mut table = self.lock();
            for record in &replay.records {
                let Some(kind) = record.get("rec").and_then(Json::as_str) else {
                    continue;
                };
                let Some(id) = record.get("job").and_then(Json::as_u64) else {
                    continue;
                };
                table.next_id = table.next_id.max(id);
                match kind {
                    "submitted" => {
                        let tool = record
                            .get("tool")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_owned();
                        let body = record
                            .get("body")
                            .and_then(Json::as_str)
                            .unwrap_or_default()
                            .to_owned();
                        table.jobs.insert(id, Job::new(tool, body));
                        self.submitted.fetch_add(1, Ordering::Relaxed);
                    }
                    "started" => {
                        if let Some(job) = table.jobs.get_mut(&id) {
                            job.state = JobState::Running;
                        }
                    }
                    "done" | "failed" | "cancelled" => {
                        if let Some(job) = table.jobs.get_mut(&id) {
                            // Duplicate terminal records: last wins.
                            job.state = match kind {
                                "done" => JobState::Done,
                                "failed" => JobState::Failed,
                                _ => JobState::Cancelled,
                            };
                            job.result = Some(JobResult {
                                status: record.get("status").and_then(Json::as_u64).unwrap_or(500)
                                    as u16,
                                body: record
                                    .get("body")
                                    .and_then(Json::as_str)
                                    .unwrap_or_default()
                                    .to_owned(),
                            });
                        }
                    }
                    // Checkpoints are progress hints; nothing to restore.
                    _ => {}
                }
            }
            for (&id, job) in &mut table.jobs {
                if !job.state.is_terminal() {
                    interrupted.push(id);
                    job.recovered = true;
                }
            }
            match mode {
                RecoverMode::Rerun => {
                    for &id in &interrupted {
                        if let Some(job) = table.jobs.get_mut(&id) {
                            job.state = JobState::Queued;
                        }
                        table.queue.push_back(id);
                    }
                }
                RecoverMode::Mark => {
                    for &id in &interrupted {
                        if let Some(job) = table.jobs.get_mut(&id) {
                            job.state = JobState::Failed;
                            job.result = Some(interrupted_result(&job.tool));
                        }
                    }
                }
            }
        }
        // Journal the re-marks outside the table lock.
        if mode == RecoverMode::Mark {
            for &id in &interrupted {
                let (tool, result) = {
                    let table = self.lock();
                    let job = &table.jobs[&id];
                    (job.tool.clone(), job.result.clone())
                };
                if let Some(result) = result {
                    self.journal_terminal(id, &tool, JobState::Failed, &result);
                }
                self.failed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.recovered
            .fetch_add(interrupted.len() as u64, Ordering::Relaxed);
        // Prime terminal counters from history so /metrics survives a
        // restart coherently.
        let table = self.lock();
        for job in table.jobs.values() {
            match job.state {
                JobState::Done => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                }
                JobState::Failed if mode != RecoverMode::Mark || !job.recovered => {
                    self.failed.fetch_add(1, Ordering::Relaxed);
                }
                JobState::Cancelled => {
                    self.cancelled.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
    }

    /// Appends to the journal, containing both I/O errors and injected
    /// `serve.journal` panics: a journal fault costs one counted
    /// record, never a job or a worker.
    fn journal_append(&self, record: &Json, sync: bool) {
        let Some(journal) = &self.journal else {
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| journal.append(record, sync)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(_)) | Err(_) => {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn journal_terminal(&self, id: u64, tool: &str, state: JobState, result: &JobResult) {
        self.journal_append(
            &Json::obj(vec![
                ("rec", Json::str(state.as_str())),
                ("job", Json::Int(id as i128)),
                ("tool", Json::str(tool)),
                ("status", Json::Int(i128::from(result.status))),
                ("body", Json::str(result.body.clone())),
            ]),
            true,
        );
    }

    /// Enqueues one invocation; returns the numeric job ID.
    pub(crate) fn submit(&self, tool: &str, body: &str) -> Result<u64, SubmitRejected> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(SubmitRejected::Draining);
        }
        let id = {
            let mut table = self.lock();
            if self.queue_cap > 0 && table.queue.len() >= self.queue_cap {
                return Err(SubmitRejected::QueueFull);
            }
            table.next_id += 1;
            let id = table.next_id;
            table
                .jobs
                .insert(id, Job::new(tool.to_owned(), body.to_owned()));
            id
        };
        // Journal before the job becomes runnable, so a `started`
        // record can never precede its `submitted` record.
        self.journal_append(
            &Json::obj(vec![
                ("rec", Json::str("submitted")),
                ("job", Json::Int(id as i128)),
                ("tool", Json::str(tool)),
                ("body", Json::str(body)),
            ]),
            false,
        );
        {
            let mut table = self.lock();
            table.queue.push_back(id);
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.work.notify_one();
        Ok(id)
    }

    /// Blocks until a job is available (returning its work item) or
    /// the manager is draining with an empty queue (returning `None`
    /// — the worker should exit).
    pub(crate) fn take_next(&self) -> Option<WorkItem> {
        let mut table = self.lock();
        loop {
            while let Some(id) = table.queue.pop_front() {
                let Some(job) = table.jobs.get_mut(&id) else {
                    continue;
                };
                // Skip entries cancelled while still queued.
                if job.state != JobState::Queued {
                    continue;
                }
                job.state = JobState::Running;
                let item = WorkItem {
                    id,
                    tool: job.tool.clone(),
                    body: job.body.clone(),
                    cancel: job.cancel.clone(),
                    progress: Arc::clone(&job.progress),
                };
                drop(table);
                self.journal_append(
                    &Json::obj(vec![
                        ("rec", Json::str("started")),
                        ("job", Json::Int(item.id as i128)),
                    ]),
                    false,
                );
                return Some(item);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            // Timed wait: draining can begin without a queue notify.
            let (guard, _) = self
                .work
                .wait_timeout(table, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            table = guard;
        }
    }

    /// Records a finished execution. The terminal state is `cancelled`
    /// when cancellation was requested while the job ran (the result —
    /// typically a degraded best-so-far 200 — is still attached),
    /// otherwise `done` for 2xx and `failed` for everything else.
    pub(crate) fn finish(&self, id: u64, result: JobResult) {
        let (tool, state) = {
            let table = self.lock();
            let Some(job) = table.jobs.get(&id) else {
                return;
            };
            let state = if job.cancel_requested || job.cancel.is_cancelled() {
                JobState::Cancelled
            } else if (200..300).contains(&result.status) {
                JobState::Done
            } else {
                JobState::Failed
            };
            (job.tool.clone(), state)
        };
        // WAL discipline: the fsynced terminal record lands before the
        // state becomes visible to clients.
        self.journal_terminal(id, &tool, state, &result);
        {
            let mut table = self.lock();
            if let Some(job) = table.jobs.get_mut(&id) {
                job.state = state;
                job.result = Some(result);
            }
        }
        match state {
            JobState::Done => self.completed.fetch_add(1, Ordering::Relaxed),
            JobState::Cancelled => self.cancelled.fetch_add(1, Ordering::Relaxed),
            _ => self.failed.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Requests cancellation of `id`.
    pub(crate) fn cancel(&self, id: u64) -> CancelOutcome {
        let (outcome, terminal) = {
            let mut table = self.lock();
            let Some(job) = table.jobs.get_mut(&id) else {
                return CancelOutcome::NotFound;
            };
            match job.state {
                JobState::Queued => {
                    job.cancel_requested = true;
                    job.state = JobState::Cancelled;
                    let result = cancelled_queued_result(&job.tool);
                    job.result = Some(result.clone());
                    (
                        CancelOutcome::CancelledQueued,
                        Some((job.tool.clone(), result)),
                    )
                }
                JobState::Running => {
                    job.cancel_requested = true;
                    job.cancel.cancel();
                    (CancelOutcome::Requested, None)
                }
                state => (CancelOutcome::AlreadyTerminal(state.as_str()), None),
            }
        };
        if let Some((tool, result)) = terminal {
            self.journal_terminal(id, &tool, JobState::Cancelled, &result);
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Begins shutdown: stops admissions, cancels queued jobs
    /// terminally, trips every running job's token (they degrade to
    /// best-so-far results) and wakes all workers so they drain.
    pub(crate) fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let to_cancel: Vec<(u64, String, JobResult)> = {
            let mut table = self.lock();
            let mut cancelled = Vec::new();
            let queued: Vec<u64> = table.queue.drain(..).collect();
            for id in queued {
                if let Some(job) = table.jobs.get_mut(&id) {
                    if job.state == JobState::Queued {
                        job.state = JobState::Cancelled;
                        job.cancel_requested = true;
                        let result = cancelled_queued_result(&job.tool);
                        job.result = Some(result.clone());
                        cancelled.push((id, job.tool.clone(), result));
                    }
                }
            }
            for job in table.jobs.values_mut() {
                if job.state == JobState::Running {
                    job.cancel_requested = true;
                    job.cancel.cancel();
                }
            }
            cancelled
        };
        for (id, tool, result) in &to_cancel {
            self.journal_terminal(*id, tool, JobState::Cancelled, result);
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
        self.work.notify_all();
    }

    /// Journals a progress checkpoint for every running job that moved
    /// since its last one. Called periodically by the monitor thread;
    /// checkpoints are buffered writes (progress hints, not promises).
    pub(crate) fn checkpoint_sweep(&self) {
        let snapshots: Vec<(u64, u64, Option<u64>, u64)> = {
            let mut table = self.lock();
            let mut out = Vec::new();
            for (&id, job) in &mut table.jobs {
                if job.state != JobState::Running {
                    continue;
                }
                let iterations = job.progress.iterations();
                if iterations > job.checkpointed {
                    job.checkpointed = iterations;
                    out.push((id, iterations, job.progress.best(), job.progress.probed()));
                }
            }
            out
        };
        for (id, iterations, best, probed) in snapshots {
            self.journal_append(
                &Json::obj(vec![
                    ("rec", Json::str("checkpoint")),
                    ("job", Json::Int(id as i128)),
                    ("iterations", Json::Int(iterations as i128)),
                    ("best", best.map_or(Json::Null, |b| Json::Int(b as i128))),
                    ("probed", Json::Int(probed as i128)),
                ]),
                false,
            );
        }
    }

    /// Fsyncs the journal (shutdown path); failures are counted, not
    /// fatal.
    pub(crate) fn sync_journal(&self) {
        if let Some(journal) = &self.journal {
            if journal.sync().is_err() {
                self.journal_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Status JSON for one job, or `None` when unknown.
    pub(crate) fn status_json(&self, id: u64) -> Option<Json> {
        let table = self.lock();
        let job = table.jobs.get(&id)?;
        Some(job_json(id, job))
    }

    /// Summary list of every known job, oldest first.
    pub(crate) fn list_json(&self) -> Json {
        let table = self.lock();
        Json::obj(vec![(
            "jobs",
            Json::Arr(
                table
                    .jobs
                    .iter()
                    .map(|(&id, job)| {
                        Json::obj(vec![
                            ("job", Json::str(format!("j{id}"))),
                            ("tool", Json::str(&job.tool)),
                            ("state", Json::str(job.state.as_str())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }

    /// The `/metrics` `jobs` section.
    pub(crate) fn metrics_json(&self) -> Json {
        let (queue_depth, running) = {
            let table = self.lock();
            let running = table
                .jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .count();
            (table.queue.len(), running)
        };
        Json::obj(vec![
            (
                "submitted",
                Json::Int(self.submitted.load(Ordering::Relaxed) as i128),
            ),
            ("running", Json::Int(running as i128)),
            ("queue_depth", Json::Int(queue_depth as i128)),
            (
                "completed",
                Json::Int(self.completed.load(Ordering::Relaxed) as i128),
            ),
            (
                "failed",
                Json::Int(self.failed.load(Ordering::Relaxed) as i128),
            ),
            (
                "cancelled",
                Json::Int(self.cancelled.load(Ordering::Relaxed) as i128),
            ),
            (
                "recovered",
                Json::Int(self.recovered.load(Ordering::Relaxed) as i128),
            ),
            (
                "journal_errors",
                Json::Int(self.journal_errors.load(Ordering::Relaxed) as i128),
            ),
        ])
    }

    /// True once every known job is terminal.
    #[cfg(test)]
    pub(crate) fn all_terminal(&self) -> bool {
        let table = self.lock();
        table.jobs.values().all(|job| job.state.is_terminal())
    }
}

/// Parses a `jN` job ID path segment.
pub(crate) fn parse_job_id(segment: &str) -> Option<u64> {
    segment.strip_prefix('j')?.parse().ok()
}

fn error_envelope(tool: &str, message: &str) -> String {
    Json::obj(vec![
        ("tool", Json::str(tool)),
        (
            "error",
            Json::obj(vec![
                ("kind", Json::str("cancelled")),
                ("message", Json::str(message)),
            ]),
        ),
    ])
    .render()
}

fn cancelled_queued_result(tool: &str) -> JobResult {
    JobResult {
        status: 200,
        body: error_envelope(tool, "job cancelled before it started"),
    }
}

fn interrupted_result(tool: &str) -> JobResult {
    JobResult {
        status: 500,
        body: Json::obj(vec![
            ("tool", Json::str(tool)),
            (
                "error",
                Json::obj(vec![
                    ("kind", Json::str("failed")),
                    ("message", Json::str("interrupted by daemon restart")),
                ]),
            ),
        ])
        .render(),
    }
}

fn job_json(id: u64, job: &Job) -> Json {
    let mut fields = vec![
        ("job", Json::str(format!("j{id}"))),
        ("tool", Json::str(&job.tool)),
        ("state", Json::str(job.state.as_str())),
        ("recovered", Json::Bool(job.recovered)),
    ];
    if job.state == JobState::Running {
        let mut progress = Vec::new();
        if let Some(backend) = &job.backend {
            progress.push(("backend", Json::str(backend.clone())));
        }
        progress.extend([
            ("phase", Json::str(job.progress.phase())),
            ("iterations", Json::Int(job.progress.iterations() as i128)),
            ("probed", Json::Int(job.progress.probed() as i128)),
            (
                "best",
                job.progress
                    .best()
                    .map_or(Json::Null, |b| Json::Int(b as i128)),
            ),
        ]);
        fields.push(("progress", Json::obj(progress)));
    }
    if let Some(result) = &job.result {
        fields.push(("status", Json::Int(i128::from(result.status))));
        fields.push((
            "result",
            Json::parse(&result.body).unwrap_or_else(|_| Json::str(result.body.clone())),
        ));
    }
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_take_finish_lifecycle() {
        let manager = JobManager::new(4);
        let id = manager.submit("info", "{}").unwrap();
        assert_eq!(id, 1);
        let item = manager.take_next().unwrap();
        assert_eq!(item.id, 1);
        assert_eq!(item.tool, "info");
        manager.finish(
            1,
            JobResult {
                status: 200,
                body: r#"{"tool":"info","degraded":false,"output":"x"}"#.to_owned(),
            },
        );
        let status = manager.status_json(1).unwrap();
        assert_eq!(status.get("state").unwrap().as_str(), Some("done"));
        assert!(manager.all_terminal());
    }

    #[test]
    fn running_jobs_echo_their_backend_in_progress() {
        let manager = JobManager::new(4);
        // Explicit backend in the body wins.
        let id = manager
            .submit(
                "optimize",
                r#"{"soc":"d695","params":{"patterns":100,"backend":"rect-pack"}}"#,
            )
            .unwrap();
        // No backend field: the spec default is echoed.
        let defaulted = manager.submit("optimize", r#"{"soc":"d695"}"#).unwrap();
        // Tools without a backend parameter echo nothing.
        let plain = manager.submit("info", r#"{"soc":"d695"}"#).unwrap();
        for _ in 0..3 {
            manager.take_next().unwrap();
        }
        let backend_of = |id: u64| {
            manager
                .status_json(id)
                .unwrap()
                .get("progress")
                .and_then(|p| p.get("backend"))
                .and_then(Json::as_str)
                .map(str::to_owned)
        };
        assert_eq!(backend_of(id), Some("rect-pack".to_owned()));
        assert_eq!(backend_of(defaulted), Some("tr-architect".to_owned()));
        assert_eq!(backend_of(plain), None);
    }

    #[test]
    fn bounded_queue_rejects_overflow() {
        let manager = JobManager::new(2);
        manager.submit("info", "{}").unwrap();
        manager.submit("info", "{}").unwrap();
        assert_eq!(manager.submit("info", "{}"), Err(SubmitRejected::QueueFull));
    }

    #[test]
    fn cancel_queued_is_immediately_terminal() {
        let manager = JobManager::new(0);
        let id = manager.submit("optimize", "{}").unwrap();
        assert_eq!(manager.cancel(id), CancelOutcome::CancelledQueued);
        let status = manager.status_json(id).unwrap();
        assert_eq!(status.get("state").unwrap().as_str(), Some("cancelled"));
        // The queue entry is skipped, not executed.
        manager.drain();
        assert!(manager.take_next().is_none());
    }

    #[test]
    fn cancel_running_trips_the_token_and_finish_lands_cancelled() {
        let manager = JobManager::new(0);
        let id = manager.submit("optimize", "{}").unwrap();
        let item = manager.take_next().unwrap();
        assert_eq!(manager.cancel(id), CancelOutcome::Requested);
        assert!(item.cancel.is_cancelled());
        // Even a 200 (degraded best-so-far) lands in `cancelled`.
        manager.finish(
            id,
            JobResult {
                status: 200,
                body: r#"{"tool":"optimize","degraded":true,"output":"x"}"#.to_owned(),
            },
        );
        let status = manager.status_json(id).unwrap();
        assert_eq!(status.get("state").unwrap().as_str(), Some("cancelled"));
        assert_eq!(
            status.get("result").unwrap().get("degraded").unwrap(),
            &Json::Bool(true)
        );
        assert_eq!(
            manager.cancel(id),
            CancelOutcome::AlreadyTerminal("cancelled")
        );
    }

    #[test]
    fn drain_cancels_queued_and_running() {
        let manager = JobManager::new(0);
        let queued = manager.submit("info", "{}").unwrap();
        let running = manager.submit("info", "{}").unwrap();
        // Pull the first submission into the running state.
        let item = manager.take_next().unwrap();
        assert_eq!(item.id, queued);
        manager.drain();
        assert!(item.cancel.is_cancelled());
        let status = manager.status_json(running).unwrap();
        assert_eq!(status.get("state").unwrap().as_str(), Some("cancelled"));
        assert!(manager.take_next().is_none(), "workers drain");
        assert_eq!(manager.submit("info", "{}"), Err(SubmitRejected::Draining));
    }

    #[test]
    fn replay_tolerates_duplicate_terminal_records_last_wins() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "soctam-job-dup-terminal-{}.wal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            let submit = |id: i128| {
                Json::obj(vec![
                    ("rec", Json::str("submitted")),
                    ("job", Json::Int(id)),
                    ("tool", Json::str("info")),
                    ("body", Json::str("{}")),
                ])
            };
            let terminal = |id: i128, rec: &str, body: &str| {
                Json::obj(vec![
                    ("rec", Json::str(rec)),
                    ("job", Json::Int(id)),
                    ("tool", Json::str("info")),
                    ("status", Json::Int(200)),
                    ("body", Json::str(body)),
                ])
            };
            journal.append(&submit(1), false).unwrap();
            // Re-marking after recovery appends, never rewrites: two
            // terminal records for one job, the later one wins.
            journal
                .append(&terminal(1, "failed", "first"), true)
                .unwrap();
            journal
                .append(&terminal(1, "done", "second"), true)
                .unwrap();
        }
        let (journal, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.corrupt, 0);
        let manager = JobManager::with_journal(0, journal, &replay, RecoverMode::Rerun);
        let status = manager.status_json(1).unwrap();
        assert_eq!(status.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(status.get("result").unwrap().as_str(), Some("second"));
        // Nothing to recover: the job is terminal.
        manager.drain();
        assert!(manager.take_next().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn job_id_parses() {
        assert_eq!(parse_job_id("j17"), Some(17));
        assert_eq!(parse_job_id("17"), None);
        assert_eq!(parse_job_id("jx"), None);
    }
}
