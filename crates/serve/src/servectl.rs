//! `soctam-servectl` — a dependency-free command-line client for a
//! running `soctam-serve` daemon. Used by the CI smoke jobs; also handy
//! interactively when `curl` is not around.
//!
//! Every verb goes through [`client::request_with_retry`]: connect
//! failures and 429/503 pacing responses are retried with deterministic
//! seeded exponential backoff (override the jitter seed with
//! `SOCTAM_RETRY_SEED`), honoring the server's `Retry-After` hint.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use soctam_registry::Json;
use soctam_serve::client::{self, ClientResponse, RetryPolicy};

const USAGE: &str = "\
soctam-servectl — talk to a running soctam-serve daemon

USAGE:
    soctam-servectl <addr> get    <path>
    soctam-servectl <addr> post   <path> [json-body]
    soctam-servectl <addr> submit <tool> [json-request]
    soctam-servectl <addr> wait   <job-id> [timeout-secs]
    soctam-servectl <addr> cancel <job-id>
    soctam-servectl <addr> jobs

EXAMPLES:
    soctam-servectl 127.0.0.1:8080 get /v1/tools
    soctam-servectl 127.0.0.1:8080 submit optimize \\
        '{\"soc\":\"d695\",\"params\":{\"patterns\":300,\"width\":16}}'
    soctam-servectl 127.0.0.1:8080 wait j1
    soctam-servectl 127.0.0.1:8080 cancel j1
    soctam-servectl 127.0.0.1:8080 post /admin/shutdown

The response body goes to stdout, `HTTP <status>` to stderr. Requests
retry transparently on connect errors and 429/503 (deterministic seeded
backoff; set SOCTAM_RETRY_SEED to vary the jitter stream).

EXIT CODES:
    0  success (2xx; for `wait`: the job finished `done`)
    1  failure (non-2xx, connect error, or the awaited job `failed`)
    2  usage error
    3  the awaited job ended `cancelled`
    4  `wait` timed out before the job reached a terminal state
";

/// Exit code for a job that ended `cancelled`.
const EXIT_CANCELLED: u8 = 3;
/// Exit code for a `wait` that hit its timeout.
const EXIT_WAIT_TIMEOUT: u8 = 4;
/// Default `wait` timeout.
const DEFAULT_WAIT_SECS: u64 = 600;
/// `wait` polling interval.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

fn retry_policy() -> RetryPolicy {
    let seed = std::env::var("SOCTAM_RETRY_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    RetryPolicy::seeded(seed)
}

/// Prints the exchange and maps 2xx to exit 0, everything else to 1.
fn report(result: Result<ClientResponse, client::ClientError>) -> ExitCode {
    match result {
        Ok(response) => {
            eprintln!("HTTP {}", response.status);
            println!("{}", response.body);
            if (200..300).contains(&response.status) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `wait <job-id>`: poll until the job is terminal, print its final
/// status document, and map the terminal state to an exit code.
fn wait_for_job(addr: &str, job: &str, timeout: Duration, policy: &RetryPolicy) -> ExitCode {
    let path = format!("/v1/jobs/{job}");
    let deadline = Instant::now() + timeout;
    loop {
        let response = match client::request_with_retry(addr, "GET", &path, "", policy) {
            Ok(response) => response,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !(200..300).contains(&response.status) {
            eprintln!("HTTP {}", response.status);
            println!("{}", response.body);
            return ExitCode::FAILURE;
        }
        let state = Json::parse(&response.body)
            .ok()
            .and_then(|doc| doc.get("state").and_then(Json::as_str).map(str::to_owned))
            .unwrap_or_default();
        match state.as_str() {
            "done" | "failed" | "cancelled" => {
                eprintln!("HTTP {}", response.status);
                println!("{}", response.body);
                return match state.as_str() {
                    "done" => ExitCode::SUCCESS,
                    "cancelled" => ExitCode::from(EXIT_CANCELLED),
                    _ => ExitCode::FAILURE,
                };
            }
            _ => {}
        }
        if Instant::now() >= deadline {
            eprintln!("error: job {job} not terminal after {}s", timeout.as_secs());
            println!("{}", response.body);
            return ExitCode::from(EXIT_WAIT_TIMEOUT);
        }
        std::thread::sleep(POLL_INTERVAL);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (Some(addr), Some(verb)) = (args.first(), args.get(1)) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let policy = retry_policy();
    let arg = args.get(2);
    let empty = String::new();
    match verb.as_str() {
        "get" | "post" | "cancel" | "submit" | "wait" if arg.is_none() => {
            eprintln!("error: `{verb}` needs an argument (try --help)");
            ExitCode::from(2)
        }
        "get" => report(client::request_with_retry(
            addr,
            "GET",
            arg.unwrap_or(&empty),
            "",
            &policy,
        )),
        "post" => report(client::request_with_retry(
            addr,
            "POST",
            arg.unwrap_or(&empty),
            args.get(3).unwrap_or(&empty),
            &policy,
        )),
        "submit" => {
            let request = match args.get(3) {
                Some(raw) => match Json::parse(raw) {
                    Ok(json) => json,
                    Err(e) => {
                        eprintln!("error: invalid request JSON: {e}");
                        return ExitCode::from(2);
                    }
                },
                None => Json::Obj(Vec::new()),
            };
            let body = Json::obj(vec![
                ("tool", Json::str(arg.unwrap_or(&empty).as_str())),
                ("request", request),
            ])
            .render();
            report(client::request_with_retry(
                addr, "POST", "/v1/jobs", &body, &policy,
            ))
        }
        "wait" => {
            let timeout = match args.get(3) {
                Some(raw) => match raw.parse() {
                    Ok(secs) => Duration::from_secs(secs),
                    Err(_) => {
                        eprintln!("error: invalid timeout `{raw}` (seconds expected)");
                        return ExitCode::from(2);
                    }
                },
                None => Duration::from_secs(DEFAULT_WAIT_SECS),
            };
            wait_for_job(addr, arg.unwrap_or(&empty), timeout, &policy)
        }
        "cancel" => report(client::request_with_retry(
            addr,
            "DELETE",
            &format!("/v1/jobs/{}", arg.unwrap_or(&empty)),
            "",
            &policy,
        )),
        "jobs" => report(client::request_with_retry(
            addr, "GET", "/v1/jobs", "", &policy,
        )),
        other => {
            eprintln!("error: unknown verb `{other}` (try --help)");
            ExitCode::from(2)
        }
    }
}
