//! `soctam-servectl` — a dependency-free command-line client for a
//! running `soctam-serve` daemon. Used by the CI smoke jobs; also handy
//! interactively when `curl` is not around.

use std::process::ExitCode;

use soctam_serve::client;

const USAGE: &str = "\
soctam-servectl — talk to a running soctam-serve daemon

USAGE:
    soctam-servectl <addr> get  <path>
    soctam-servectl <addr> post <path> [json-body]

EXAMPLES:
    soctam-servectl 127.0.0.1:8080 get /v1/tools
    soctam-servectl 127.0.0.1:8080 post /v1/tools/optimize \\
        '{\"soc\":\"d695\",\"params\":{\"patterns\":300,\"width\":16}}'
    soctam-servectl 127.0.0.1:8080 post /admin/shutdown

The response body goes to stdout, `HTTP <status>` to stderr; the exit
code is 0 for 2xx responses and 1 otherwise.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let (addr, verb, path) = match (args.first(), args.get(1), args.get(2)) {
        (Some(addr), Some(verb), Some(path)) => (addr, verb.as_str(), path),
        _ => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let empty = String::new();
    let result = match verb {
        "get" => client::get(addr, path),
        "post" => client::post(addr, path, args.get(3).unwrap_or(&empty)),
        other => {
            eprintln!("error: unknown verb `{other}` (try --help)");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(response) => {
            eprintln!("HTTP {}", response.status);
            println!("{}", response.body);
            if (200..300).contains(&response.status) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
