//! Minimal HTTP/1.1 framing: enough protocol to serve and consume the
//! daemon's JSON API, nothing more.
//!
//! One request per connection (`Connection: close`), bounded header and
//! body sizes, read timeouts on every socket — a misbehaving peer gets
//! a structured error or a closed socket, never a hung thread.

use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Upper bound on the request line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (inline `.soc` texts are ~100 KB for
/// the largest ITC'02 benchmarks; 4 MB leaves generous headroom).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Per-socket read/write timeout.
pub const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Method verb (`GET`, `POST`, ...), uppercase as received.
    pub method: String,
    /// Request target path, query string included verbatim.
    pub path: String,
    /// Decoded body (empty when none was sent).
    pub body: String,
}

/// A framing failure while reading a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HttpError {
    /// Human-readable description.
    pub message: String,
}

impl HttpError {
    fn new(message: impl Into<String>) -> Self {
        HttpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::new(format!("socket error: {e}"))
    }
}

/// Reads one request from `stream`.
///
/// # Errors
///
/// [`HttpError`] on malformed framing, oversized input or socket
/// failure (including the read timeout).
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut head_bytes = 0usize;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    head_bytes += line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new("empty request line"))?
        .to_owned();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::new("request line has no path"))?
        .to_owned();
    if !matches!(parts.next(), Some(v) if v.starts_with("HTTP/1.")) {
        return Err(HttpError::new("unsupported protocol version"));
    }

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 {
            return Err(HttpError::new("connection closed inside headers"));
        }
        head_bytes += n;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(HttpError::new("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::new("invalid Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::new("request body too large"));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| HttpError::new("request body is not UTF-8"))?;
    Ok(Request { method, path, body })
}

/// Writes a JSON response and flushes; the caller closes the stream.
///
/// # Errors
///
/// Forwards socket failures.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response_with(stream, status, body, &[])
}

/// [`write_response`] with extra response headers (e.g. `Retry-After`).
/// Header names and values must be ASCII without CR/LF.
///
/// # Errors
///
/// Forwards socket failures.
pub fn write_response_with(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    headers: &[(&str, String)],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// The canonical reason phrase for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        409 => "Conflict",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let writer = std::thread::spawn(move || {
            let mut out = TcpStream::connect(addr).unwrap();
            out.write_all(raw.as_bytes()).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        writer.join().unwrap();
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req =
            roundtrip("POST /v1/tools/info HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"\"}")
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/tools/info");
        assert_eq!(req.body, "{\"\"}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let req = roundtrip("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, "");
    }

    #[test]
    fn rejects_bad_framing() {
        assert!(roundtrip("\r\n\r\n").is_err());
        assert!(roundtrip("GET\r\n\r\n").is_err());
        assert!(roundtrip("GET / SPDY/3\r\n\r\n").is_err());
        assert!(roundtrip("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n").is_err());
        let oversized = format!(
            "GET / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(roundtrip(&oversized).is_err());
    }
}
