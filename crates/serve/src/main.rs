//! The `soctam-serve` binary: flag parsing and process I/O only; the
//! daemon logic lives in the library so it can be tested in-process.

use std::process::ExitCode;

use soctam_exec::{fault, signal};
use soctam_serve::{RecoverMode, Server, ServerConfig};

const USAGE: &str = "\
soctam-serve — multi-tenant optimization daemon

USAGE:
    soctam-serve [OPTIONS]

OPTIONS:
    --listen <addr>      listen address            [default: 127.0.0.1:8080]
    --jobs <N>           worker threads (0 = all cores)      [default: 0]
    --max-inflight <N>   concurrent sync job limit
                         (0 = unlimited)                     [default: 0]
    --cache-cap <N>      evaluator cache entry bound
                         (0 = unbounded)                [default: 1048576]
    --queue-cap <N>      async job queue bound (0 = unbounded)
                                                            [default: 64]
    --job-workers <N>    background job worker threads       [default: 2]
    --journal <path>     write-ahead job journal; replayed on startup
    --recover <mode>     rerun | mark — what to do with jobs a crash
                         interrupted                    [default: rerun]
    --stats              print final metrics JSON to stderr on shutdown
    --help               print this text

ENDPOINTS:
    GET    /v1/tools          tool schemas (shared with the soctam CLI)
    POST   /v1/tools/<name>   run a tool; body:
                              {\"soc\":\"d695\",\"params\":{...},\"deadline_ms\":500}
    POST   /v1/jobs           enqueue a run: {\"tool\":\"optimize\",\"request\":{...}}
    GET    /v1/jobs           list known jobs
    GET    /v1/jobs/<id>      job status / progress / result
    DELETE /v1/jobs/<id>      cooperative cancel (degrades to best-so-far)
    GET    /metrics           server / job / cache / pool counters as JSON
    GET    /healthz           liveness probe
    POST   /admin/shutdown    graceful stop

SIGNALS:
    SIGTERM / SIGINT   graceful stop: drain the queue, degrade running
                       jobs to best-so-far, fsync the journal, exit 0

ENVIRONMENT:
    SOCTAM_FAILPOINTS  deterministic fault injection (see DESIGN.md);
                       the daemon adds sites serve.accept, serve.dispatch,
                       serve.job, serve.journal
";

fn parse_config(args: &[String]) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value_for = |flag: &str| -> Result<&String, String> {
            iter.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag.as_str() {
            "--listen" => config.listen = value_for("--listen")?.clone(),
            "--jobs" => {
                config.jobs = value_for("--jobs")?
                    .parse()
                    .map_err(|_| "invalid --jobs value".to_owned())?;
            }
            "--max-inflight" => {
                config.max_inflight = value_for("--max-inflight")?
                    .parse()
                    .map_err(|_| "invalid --max-inflight value".to_owned())?;
            }
            "--cache-cap" => {
                config.cache_cap = value_for("--cache-cap")?
                    .parse()
                    .map_err(|_| "invalid --cache-cap value".to_owned())?;
            }
            "--queue-cap" => {
                config.queue_cap = value_for("--queue-cap")?
                    .parse()
                    .map_err(|_| "invalid --queue-cap value".to_owned())?;
            }
            "--job-workers" => {
                config.job_workers = value_for("--job-workers")?
                    .parse()
                    .map_err(|_| "invalid --job-workers value".to_owned())?;
            }
            "--journal" => {
                config.journal = Some(value_for("--journal")?.into());
            }
            "--recover" => {
                config.recover = match value_for("--recover")?.as_str() {
                    "rerun" => RecoverMode::Rerun,
                    "mark" => RecoverMode::Mark,
                    other => {
                        return Err(format!(
                            "invalid --recover value `{other}` (expected rerun or mark)"
                        ));
                    }
                };
            }
            "--stats" => config.stats = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option `{other}` (try --help)")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_config(&args) {
        Ok(config) => config,
        Err(message) if message.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = fault::init_from_env() {
        eprintln!("error: invalid {}: {e}", fault::ENV_VAR);
        return ExitCode::from(2);
    }
    let server = match Server::bind(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // SIGTERM/SIGINT latch an atomic flag the accept loop polls, so a
    // signal gets the same graceful drain as POST /admin/shutdown.
    signal::install_terminate_handlers();
    if let Some(summary) = server.replay_summary() {
        eprintln!("soctam-serve: {summary}");
    }
    // Scripts (and the CI smoke job) scrape this line for the resolved
    // port when `--listen` ends in `:0`.
    println!("soctam-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
