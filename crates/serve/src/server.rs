//! The daemon: connection-per-thread HTTP server over the shared tool
//! registry, plus an asynchronous job subsystem.
//!
//! Every worker connection shares one [`Pool`] (so `--jobs` bounds
//! total parallelism, not per-request parallelism) and one warm
//! [`EvalCache`]; identical sub-evaluations across requests — same SOC,
//! same width budget, same groups — hit the cache instead of
//! recomputing. Admission control caps concurrently-running synchronous
//! jobs and rejects the overflow with a structured `429` (carrying a
//! `Retry-After` pacing hint) instead of queueing unboundedly.
//!
//! Long invocations go through `POST /v1/jobs` instead: a bounded FIFO
//! drained by background job workers, with `GET /v1/jobs/{id}` status
//! polling, `DELETE /v1/jobs/{id}` cooperative cancellation and an
//! optional write-ahead journal (`--journal`) that makes acknowledged
//! outcomes survive `kill -9` — see [`crate::journal`] and the job
//! module docs for the recovery contract.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soctam::{BackendKind, EvalCache, MetricsSnapshot, Pool, Soc};
use soctam_exec::fault::panic_message;
use soctam_exec::{fault, signal, CancelToken, Progress};
use soctam_registry::{
    parse_json, resolve_soc, resolve_soc_text, standard_registry, Json, ParamValue, ToolCtx,
    ToolError, ToolErrorKind,
};

use crate::http::{read_request, write_response_with, Request};
use crate::job::{parse_job_id, CancelOutcome, JobManager, JobResult, SubmitRejected};
use crate::journal::Journal;

pub use crate::job::RecoverMode;

/// `Retry-After` seconds suggested on admission/queue rejections.
const RETRY_AFTER_SECS: u64 = 1;
/// Longest accept-loop idle backoff; accepts reset it to 1 ms.
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(8);
/// How often the monitor thread journals job checkpoints.
const CHECKPOINT_INTERVAL: Duration = Duration::from_millis(100);

/// How the daemon is configured; see `soctam-serve --help`.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8080` (`:0` picks a free port).
    pub listen: String,
    /// Worker threads in the shared pool (0 = all cores).
    pub jobs: usize,
    /// Maximum concurrently-running synchronous tool jobs; further
    /// requests get a structured 429. 0 = unlimited.
    pub max_inflight: usize,
    /// Entry bound for the shared evaluator cache (FIFO eviction);
    /// 0 = unbounded.
    pub cache_cap: usize,
    /// Bound on the async job queue; overflow gets a structured 429
    /// with `Retry-After`. 0 = unbounded.
    pub queue_cap: usize,
    /// Background job-worker threads draining the queue (minimum 1).
    pub job_workers: usize,
    /// Write-ahead journal path; `None` disables crash recovery.
    pub journal: Option<PathBuf>,
    /// How replay treats jobs interrupted by a crash.
    pub recover: RecoverMode,
    /// Print final metrics JSON to stderr on clean shutdown.
    pub stats: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            listen: "127.0.0.1:8080".to_owned(),
            jobs: 0,
            max_inflight: 0,
            // A long-running daemon must not grow without bound; one
            // million entries is roomy (a d695 optimize needs ~10^3).
            cache_cap: 1 << 20,
            queue_cap: 64,
            job_workers: 2,
            journal: None,
            recover: RecoverMode::Rerun,
            stats: false,
        }
    }
}

/// A daemon failure (bind error, accept-loop I/O failure, unusable
/// journal).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ServeError {}

struct ServerState {
    pool: Pool,
    cache: EvalCache,
    max_inflight: usize,
    inflight: AtomicUsize,
    requests: AtomicU64,
    rejected: AtomicU64,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    jobs: JobManager,
    /// Per-backend invocation counters, aligned with
    /// [`BackendKind::NAMES`]; counts every successfully-parsed request
    /// that carries a backend parameter (sync and job paths alike).
    backend_runs: [AtomicU64; 2],
}

impl ServerState {
    fn count_backend(&self, name: &str) {
        if let Some(i) = BackendKind::NAMES.iter().position(|n| *n == name) {
            self.backend_runs[i].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// A bound, not-yet-running daemon.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    state: Arc<ServerState>,
    job_workers: usize,
    stats: bool,
    replay_note: Option<String>,
}

impl Server {
    /// Binds the listen address and builds the shared state (pool,
    /// warm cache, job manager — replaying the journal when one is
    /// configured). No connection is accepted until [`Server::run`].
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the address cannot be bound or the journal
    /// cannot be opened.
    pub fn bind(config: &ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.listen).map_err(|e| ServeError {
            message: format!("cannot bind `{}`: {e}", config.listen),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError {
            message: format!("cannot resolve local address: {e}"),
        })?;
        let pool = Pool::new(config.jobs);
        let cache = if config.cache_cap > 0 {
            EvalCache::with_capacity_and_metrics(config.cache_cap, pool.metrics())
        } else {
            EvalCache::new()
        };
        let (jobs, replay_note) = match &config.journal {
            Some(path) => {
                let (journal, replay) = Journal::open(path).map_err(|e| ServeError {
                    message: format!("cannot open journal `{}`: {e}", path.display()),
                })?;
                let note = format!(
                    "journal `{}`: {} records replayed, {} corrupt skipped{}",
                    path.display(),
                    replay.records.len(),
                    replay.corrupt,
                    if replay.torn_tail {
                        ", torn tail truncated"
                    } else {
                        ""
                    }
                );
                (
                    JobManager::with_journal(config.queue_cap, journal, &replay, config.recover),
                    Some(note),
                )
            }
            None => (JobManager::new(config.queue_cap), None),
        };
        Ok(Server {
            listener,
            local_addr,
            state: Arc::new(ServerState {
                pool,
                cache,
                max_inflight: config.max_inflight,
                inflight: AtomicUsize::new(0),
                requests: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                shutdown: AtomicBool::new(false),
                jobs,
                backend_runs: [AtomicU64::new(0), AtomicU64::new(0)],
            }),
            job_workers: config.job_workers.max(1),
            stats: config.stats,
            replay_note,
        })
    }

    /// The bound address (resolves `:0` to the picked port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A one-line journal replay summary (record/corruption counts),
    /// when a journal is configured. For startup logging.
    pub fn replay_summary(&self) -> Option<&str> {
        self.replay_note.as_deref()
    }

    /// Serves until `POST /admin/shutdown` or a SIGTERM/SIGINT latch
    /// (see [`soctam_exec::signal`]); drains the job queue (running
    /// jobs degrade to best-so-far via their cancel tokens), joins
    /// every worker thread and fsyncs the journal before returning —
    /// so a clean return means no job was abandoned mid-flight.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the accept loop cannot continue.
    pub fn run(self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError {
                message: format!("cannot configure listener: {e}"),
            })?;

        let mut job_workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for _ in 0..self.job_workers {
            let state = Arc::clone(&self.state);
            job_workers.push(std::thread::spawn(move || job_worker_loop(&state)));
        }
        let monitor_stop = Arc::new(AtomicBool::new(false));
        let monitor = {
            let state = Arc::clone(&self.state);
            let stop = Arc::clone(&monitor_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    state.jobs.checkpoint_sweep();
                    std::thread::sleep(CHECKPOINT_INTERVAL);
                }
            })
        };

        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut backoff = Duration::from_millis(1);
        let accept_result = loop {
            if self.state.shutdown.load(Ordering::SeqCst) || signal::terminate_requested() {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    backoff = Duration::from_millis(1);
                    let state = Arc::clone(&self.state);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, &state);
                    }));
                    workers.retain(|handle| !handle.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // Poll-with-backoff: stay responsive right after
                    // traffic, back off to 8 ms when idle.
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                }
                Err(e) => {
                    break Err(ServeError {
                        message: format!("accept failed: {e}"),
                    });
                }
            }
        };

        // Drain: no new admissions, queued jobs cancel terminally,
        // running jobs degrade to best-so-far; then every thread joins
        // and the journal is fsynced. Runs even when the accept loop
        // failed, so no thread is leaked.
        self.state.jobs.drain();
        for handle in workers {
            let _ = handle.join();
        }
        for handle in job_workers {
            let _ = handle.join();
        }
        monitor_stop.store(true, Ordering::SeqCst);
        let _ = monitor.join();
        self.state.jobs.sync_journal();
        if self.stats {
            eprintln!("{}", metrics_json(&self.state).render());
        }
        accept_result
    }
}

/// RAII admission slot; drops decrement the in-flight gauge even when
/// the job panics.
struct InflightGuard<'a>(&'a ServerState);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

struct Response {
    status: u16,
    body: String,
    retry_after: Option<u64>,
}

impl Response {
    fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            body: value.render(),
            retry_after: None,
        }
    }

    fn error(status: u16, request_id: Option<&str>, kind: &str, err: &ToolError) -> Response {
        let mut error_fields = vec![
            ("kind", Json::str(kind)),
            ("message", Json::str(err.message.clone())),
        ];
        if !err.codes.is_empty() {
            error_fields.push((
                "codes",
                Json::Arr(err.codes.iter().map(Json::str).collect()),
            ));
        }
        let mut fields = Vec::new();
        if let Some(id) = request_id {
            fields.push(("request_id", Json::str(id)));
        }
        fields.push(("error", Json::obj(error_fields)));
        Response::json(status, &Json::obj(fields))
    }

    /// Attaches a `Retry-After` pacing hint (429/503 rejections).
    fn retry_after(mut self, secs: u64) -> Response {
        self.retry_after = Some(secs);
        self
    }
}

fn handle_connection(mut stream: TcpStream, state: &ServerState) {
    // Read the request before any rejection: closing a socket with
    // unread data sends a TCP RST, which clients see instead of the
    // structured response we wrote.
    let request = read_request(&mut stream);
    // Failpoint: an injected accept-path fault must still produce a
    // structured response on the open socket, never a hung connection.
    if let Err(e) = fault::check("serve.accept") {
        let response = Response::error(503, None, "unavailable", &ToolError::failed(e.to_string()))
            .retry_after(RETRY_AFTER_SECS);
        send(&mut stream, &response);
        return;
    }
    let request = match request {
        Ok(request) => request,
        Err(e) => {
            let response = Response::error(400, None, "malformed", &ToolError::failed(e.message));
            send(&mut stream, &response);
            return;
        }
    };
    let response = route(&request, state);
    send(&mut stream, &response);
}

fn send(stream: &mut TcpStream, response: &Response) {
    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = response.retry_after {
        headers.push(("Retry-After", secs.to_string()));
    }
    let _ = write_response_with(stream, response.status, &response.body, &headers);
}

fn route(request: &Request, state: &ServerState) -> Response {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("GET", "/v1/tools") => Response::json(
            200,
            &Json::obj(vec![("tools", standard_registry().schema())]),
        ),
        ("POST", _) if path.starts_with("/v1/tools/") => {
            let name = &path["/v1/tools/".len()..];
            invoke_tool(name, &request.body, state)
        }
        ("POST", "/v1/jobs") => submit_job(&request.body, state),
        ("GET", "/v1/jobs") => Response::json(200, &state.jobs.list_json()),
        ("GET", _) if path.starts_with("/v1/jobs/") => {
            job_status(&path["/v1/jobs/".len()..], state)
        }
        ("DELETE", _) if path.starts_with("/v1/jobs/") => {
            cancel_job(&path["/v1/jobs/".len()..], state)
        }
        ("GET", "/metrics") => Response::json(200, &metrics_json(state)),
        ("GET", "/healthz") => Response::json(
            200,
            &Json::obj(vec![
                ("status", Json::str("ok")),
                (
                    "inflight",
                    Json::Int(state.inflight.load(Ordering::SeqCst) as i128),
                ),
            ]),
        ),
        ("POST", "/admin/shutdown") => {
            // Drain first so running jobs see their tokens trip before
            // the accept loop even notices the flag.
            state.jobs.drain();
            state.shutdown.store(true, Ordering::SeqCst);
            Response::json(
                200,
                &Json::obj(vec![("status", Json::str("shutting-down"))]),
            )
        }
        _ => Response::error(
            404,
            None,
            "not-found",
            &ToolError::failed(format!("no route for {} {}", request.method, request.path)),
        ),
    }
}

fn invoke_tool(name: &str, body: &str, state: &ServerState) -> Response {
    let request_id = format!("r{}", state.next_id.fetch_add(1, Ordering::SeqCst) + 1);
    let id = Some(request_id.as_str());
    if standard_registry().get(name).is_none() {
        return Response::error(
            404,
            id,
            "not-found",
            &ToolError::failed(format!("unknown tool `{name}` (GET /v1/tools lists them)")),
        );
    }

    // Admission control: reserve a slot before any parsing work; the
    // rejection is cheap and structured, not a queued or dropped socket.
    let occupied = state.inflight.fetch_add(1, Ordering::SeqCst);
    let guard = InflightGuard(state);
    if state.max_inflight > 0 && occupied >= state.max_inflight {
        drop(guard);
        state.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::error(
            429,
            id,
            "rejected",
            &ToolError::failed(format!(
                "server is at its --max-inflight limit ({}); retry later",
                state.max_inflight
            )),
        )
        .retry_after(RETRY_AFTER_SECS);
    }

    respond_with_id(execute(name, body, state, None, None), &request_id)
}

/// Runs one tool invocation to a response envelope. The body never
/// contains a request ID: the synchronous path prepends one via
/// [`respond_with_id`], while job results must be byte-identical
/// across runs and restarts.
fn execute(
    name: &str,
    body: &str,
    state: &ServerState,
    cancel: Option<CancelToken>,
    progress: Option<Arc<Progress>>,
) -> Response {
    let Some(tool) = standard_registry().get(name) else {
        return Response::error(
            404,
            None,
            "not-found",
            &ToolError::failed(format!("unknown tool `{name}` (GET /v1/tools lists them)")),
        );
    };
    let parsed = match parse_body(tool_body(body)) {
        Ok(parsed) => parsed,
        Err(response) => return response,
    };
    let (soc, params) = match build_invocation(tool.params, &parsed) {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    if let Some(backend) = params.opt_str("backend") {
        state.count_backend(backend);
    }

    // Failpoint: dispatch-path fault → structured 500.
    if let Err(e) = fault::check("serve.dispatch") {
        return Response::error(500, None, "failed", &ToolError::failed(e.to_string()));
    }

    let ctx = ToolCtx {
        pool: state.pool.clone(),
        eval_cache: Some(state.cache.clone()),
        progress,
        cancel,
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| (tool.run)(&soc, &params, &ctx)));
    match outcome {
        Ok(Ok(output)) => Response::json(
            200,
            &Json::obj(vec![
                ("tool", Json::str(tool.name)),
                ("degraded", Json::Bool(output.degraded)),
                ("output", Json::str(output.text)),
            ]),
        ),
        Ok(Err(err)) => {
            let (status, kind) = match err.kind {
                ToolErrorKind::Usage => (400, "usage"),
                ToolErrorKind::Invalid => (422, "invalid"),
                ToolErrorKind::Failed => (500, "failed"),
            };
            Response::error(status, None, kind, &err)
        }
        Err(panic) => Response::error(
            500,
            None,
            "internal",
            &ToolError::failed(panic_message(panic.as_ref())),
        ),
    }
}

/// One background job worker: drains the queue until the manager says
/// to exit. A panicking job (including an armed `serve.job` panic
/// failpoint) costs that job, never the worker.
fn job_worker_loop(state: &Arc<ServerState>) {
    while let Some(item) = state.jobs.take_next() {
        state.inflight.fetch_add(1, Ordering::SeqCst);
        let guard = InflightGuard(state);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            // Failpoint: job-path fault after `started` is journaled,
            // before dispatch — the window a crash leaves a job
            // interrupted.
            if let Err(e) = fault::check("serve.job") {
                return Response::error(500, None, "failed", &ToolError::failed(e.to_string()));
            }
            execute(
                &item.tool,
                &item.body,
                state,
                Some(item.cancel.clone()),
                Some(Arc::clone(&item.progress)),
            )
        }));
        drop(guard);
        let response = match outcome {
            Ok(response) => response,
            Err(panic) => Response::error(
                500,
                None,
                "internal",
                &ToolError::failed(panic_message(panic.as_ref())),
            ),
        };
        state.jobs.finish(
            item.id,
            JobResult {
                status: response.status,
                body: response.body,
            },
        );
    }
}

/// `POST /v1/jobs`: `{"tool": "<name>", "request": {...}}` → 202 with
/// the job ID, or a structured rejection.
fn submit_job(body: &str, state: &ServerState) -> Response {
    let value = match Json::parse(tool_body(body)) {
        Ok(value) => value,
        Err(e) => return Response::error(400, None, "usage", &ToolError::usage(e.to_string())),
    };
    let Some(tool) = value.get("tool").and_then(Json::as_str) else {
        return Response::error(
            400,
            None,
            "usage",
            &ToolError::usage("job body must carry a `tool` name"),
        );
    };
    if standard_registry().get(tool).is_none() {
        return Response::error(
            404,
            None,
            "not-found",
            &ToolError::failed(format!("unknown tool `{tool}` (GET /v1/tools lists them)")),
        );
    }
    let request = value
        .get("request")
        .map_or_else(|| "{}".to_owned(), Json::render);
    match state.jobs.submit(tool, &request) {
        Ok(id) => Response::json(
            202,
            &Json::obj(vec![
                ("job", Json::str(format!("j{id}"))),
                ("state", Json::str("queued")),
            ]),
        ),
        Err(SubmitRejected::QueueFull) => {
            state.rejected.fetch_add(1, Ordering::Relaxed);
            Response::error(
                429,
                None,
                "rejected",
                &ToolError::failed("job queue is full; retry later"),
            )
            .retry_after(RETRY_AFTER_SECS)
        }
        Err(SubmitRejected::Draining) => Response::error(
            503,
            None,
            "unavailable",
            &ToolError::failed("server is shutting down"),
        )
        .retry_after(RETRY_AFTER_SECS),
    }
}

fn job_status(segment: &str, state: &ServerState) -> Response {
    let Some(id) = parse_job_id(segment) else {
        return Response::error(
            400,
            None,
            "usage",
            &ToolError::usage(format!("malformed job id `{segment}` (expected jN)")),
        );
    };
    match state.jobs.status_json(id) {
        Some(status) => Response::json(200, &status),
        None => Response::error(
            404,
            None,
            "not-found",
            &ToolError::failed(format!("no such job `{segment}`")),
        ),
    }
}

fn cancel_job(segment: &str, state: &ServerState) -> Response {
    let Some(id) = parse_job_id(segment) else {
        return Response::error(
            400,
            None,
            "usage",
            &ToolError::usage(format!("malformed job id `{segment}` (expected jN)")),
        );
    };
    match state.jobs.cancel(id) {
        CancelOutcome::NotFound => Response::error(
            404,
            None,
            "not-found",
            &ToolError::failed(format!("no such job `{segment}`")),
        ),
        CancelOutcome::CancelledQueued => Response::json(
            200,
            &Json::obj(vec![
                ("job", Json::str(segment)),
                ("state", Json::str("cancelled")),
            ]),
        ),
        CancelOutcome::Requested => Response::json(
            202,
            &Json::obj(vec![
                ("job", Json::str(segment)),
                ("state", Json::str("cancelling")),
            ]),
        ),
        CancelOutcome::AlreadyTerminal(terminal) => Response::error(
            409,
            None,
            "conflict",
            &ToolError::failed(format!("job `{segment}` is already {terminal}")),
        ),
    }
}

/// The parsed fields of a tool-invocation body.
struct ParsedBody {
    soc: Option<String>,
    soc_text: Option<String>,
    params: Json,
    deadline_ms: Option<u64>,
}

fn tool_body(body: &str) -> &str {
    if body.trim().is_empty() {
        "{}"
    } else {
        body
    }
}

fn parse_body(body: &str) -> Result<ParsedBody, Response> {
    let value = Json::parse(body)
        .map_err(|e| Response::error(400, None, "usage", &ToolError::usage(e.to_string())))?;
    let entries = value.as_obj().ok_or_else(|| {
        Response::error(
            400,
            None,
            "usage",
            &ToolError::usage("request body must be a JSON object"),
        )
    })?;
    let mut parsed = ParsedBody {
        soc: None,
        soc_text: None,
        params: Json::Null,
        deadline_ms: None,
    };
    for (key, field) in entries {
        match key.as_str() {
            "soc" => {
                parsed.soc = Some(
                    field
                        .as_str()
                        .ok_or_else(|| bad_field("`soc` must be a string"))?
                        .to_owned(),
                );
            }
            "soc_text" => {
                parsed.soc_text = Some(
                    field
                        .as_str()
                        .ok_or_else(|| bad_field("`soc_text` must be a string"))?
                        .to_owned(),
                );
            }
            "params" => parsed.params = field.clone(),
            "deadline_ms" => {
                parsed.deadline_ms =
                    Some(field.as_u64().ok_or_else(|| {
                        bad_field("`deadline_ms` must be a non-negative integer")
                    })?);
            }
            other => {
                return Err(bad_field(format!(
                    "unknown request field `{other}` (expected soc, soc_text, params, deadline_ms)"
                )));
            }
        }
    }
    Ok(parsed)
}

fn bad_field(message: impl Into<String>) -> Response {
    Response::error(400, None, "usage", &ToolError::usage(message))
}

fn build_invocation(
    specs: &'static [soctam_registry::ParamSpec],
    parsed: &ParsedBody,
) -> Result<(Soc, soctam_registry::ParamValues), Response> {
    let soc = match (&parsed.soc, &parsed.soc_text) {
        (Some(spec), None) => resolve_soc(spec),
        (None, Some(text)) => resolve_soc_text(text, "soc_text"),
        (Some(_), Some(_)) => {
            return Err(bad_field("give either `soc` or `soc_text`, not both"));
        }
        (None, None) => {
            return Err(bad_field(
                "missing `soc` (benchmark name or path) or `soc_text` (inline .soc)",
            ));
        }
    }
    // A SOC the client named but the server cannot resolve is the
    // client's problem, whatever stage detected it: 422, not 500.
    .map_err(|e| {
        Response::error(
            422,
            None,
            "invalid",
            &ToolError {
                kind: ToolErrorKind::Invalid,
                message: e.message,
                codes: e.codes,
            },
        )
    })?;
    let mut params = parse_json(specs, &parsed.params)
        .map_err(|e| Response::error(400, None, "usage", &ToolError::usage(e.message)))?;
    if let Some(ms) = parsed.deadline_ms {
        if !specs.iter().any(|spec| spec.name == "deadline-ms") {
            return Err(bad_field("this tool does not accept `deadline_ms`"));
        }
        params.set("deadline-ms", ParamValue::U64(ms));
    }
    // Profiles resolve on the server's filesystem; a bad file or key is
    // the client's problem and carries its stable PRF-V* code.
    soctam_registry::expand_profile(specs, &mut params)
        .map_err(|e| Response::error(422, None, "invalid", &e))?;
    Ok((soc, params))
}

/// Re-renders a response so it carries the request ID first (the
/// envelope helpers build ID-free bodies shared with the job path).
fn respond_with_id(response: Response, request_id: &str) -> Response {
    match Json::parse(&response.body) {
        Ok(Json::Obj(mut fields)) => {
            fields.insert(0, ("request_id".to_owned(), Json::str(request_id)));
            Response {
                body: Json::Obj(fields).render(),
                ..response
            }
        }
        _ => response,
    }
}

fn metrics_json(state: &ServerState) -> Json {
    let snapshot: MetricsSnapshot = state.pool.metrics().snapshot();
    let cache_capacity = match state.cache.capacity() {
        Some(cap) => Json::Int(cap as i128),
        None => Json::Null,
    };
    Json::obj(vec![
        (
            "server",
            Json::obj(vec![
                (
                    "requests",
                    Json::Int(state.requests.load(Ordering::Relaxed) as i128),
                ),
                (
                    "inflight",
                    Json::Int(state.inflight.load(Ordering::SeqCst) as i128),
                ),
                (
                    "rejected",
                    Json::Int(state.rejected.load(Ordering::Relaxed) as i128),
                ),
            ]),
        ),
        (
            "backends",
            Json::obj(
                BackendKind::NAMES
                    .iter()
                    .zip(&state.backend_runs)
                    .map(|(name, runs)| (*name, Json::Int(runs.load(Ordering::Relaxed) as i128)))
                    .collect(),
            ),
        ),
        ("jobs", state.jobs.metrics_json()),
        (
            "cache",
            Json::obj(vec![
                ("entries", Json::Int(state.cache.len() as i128)),
                ("capacity", cache_capacity),
                ("evictions", Json::Int(state.cache.evictions() as i128)),
            ]),
        ),
        (
            "pool",
            Json::obj(vec![
                ("tasks_executed", Json::Int(snapshot.tasks_executed as i128)),
                ("steals", Json::Int(snapshot.steals as i128)),
                ("cache_hits", Json::Int(snapshot.cache_hits as i128)),
                ("cache_misses", Json::Int(snapshot.cache_misses as i128)),
                (
                    "cache_evictions",
                    Json::Int(snapshot.cache_evictions as i128),
                ),
                (
                    "kernel_words_compared",
                    Json::Int(snapshot.kernel_words_compared as i128),
                ),
                (
                    "kernel_fast_rejects",
                    Json::Int(snapshot.kernel_fast_rejects as i128),
                ),
                (
                    "duplicates_removed",
                    Json::Int(snapshot.duplicates_removed as i128),
                ),
                ("rail_eval_hits", Json::Int(snapshot.rail_eval_hits as i128)),
                (
                    "rail_eval_misses",
                    Json::Int(snapshot.rail_eval_misses as i128),
                ),
                (
                    "schedule_reuses",
                    Json::Int(snapshot.schedule_reuses as i128),
                ),
                (
                    "speculative_probes",
                    Json::Int(snapshot.speculative_probes as i128),
                ),
                ("probe_batches", Json::Int(snapshot.probe_batches as i128)),
                ("probe_wasted", Json::Int(snapshot.probe_wasted as i128)),
                (
                    "phases",
                    Json::Arr(
                        snapshot
                            .phases
                            .iter()
                            .map(|(name, duration)| {
                                Json::obj(vec![
                                    ("name", Json::str(name.clone())),
                                    ("micros", Json::Int(duration.as_micros() as i128)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}
