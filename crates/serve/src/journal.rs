//! Write-ahead job journal: append-only, length-prefixed, checksummed
//! JSONL.
//!
//! Every job-state transition the daemon commits to is recorded as one
//! framed line:
//!
//! ```text
//! SJ1 <len:8 hex> <crc:16 hex> <json>\n
//! ```
//!
//! `len` is the byte length of the JSON payload and `crc` its FxHash
//! checksum, so replay can tell a torn tail (the daemon died
//! mid-write) from silent corruption mid-file. The JSON renderer
//! escapes control characters inside strings, so a payload never
//! contains a raw newline and the framing is recoverable line-by-line.
//!
//! Durability contract: non-terminal records (`submitted`, `started`,
//! `checkpoint`) are buffered writes — losing the tail of them on a
//! crash only loses progress hints. Terminal records (`done`,
//! `failed`, `cancelled`) are fsynced before the daemon acknowledges
//! the state, so an acknowledged terminal outcome survives `kill -9`.
//!
//! Replay semantics ([`Journal::open`]):
//! * complete, valid lines are returned in order;
//! * corrupted lines mid-file (checksum or framing mismatch) are
//!   skipped and counted — later valid records still apply;
//! * a torn final line (no trailing newline, or invalid framing at
//!   EOF) is counted and truncated away so appends start clean;
//! * duplicate terminal records for one job are tolerated — the last
//!   one wins (re-marking after recovery appends, never rewrites).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use soctam_exec::{fault, fx_hash_one};
use soctam_registry::Json;

/// Frame marker; bump on any incompatible format change.
const MAGIC: &str = "SJ1";

/// What a journal replay found.
#[derive(Debug, Default)]
pub struct Replay {
    /// The valid records, in file order.
    pub records: Vec<Json>,
    /// Corrupted lines skipped mid-file.
    pub corrupt: u64,
    /// Whether a torn tail was truncated away.
    pub torn_tail: bool,
}

/// An open, append-position journal file.
#[derive(Debug)]
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

/// A journal I/O failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError {
            message: format!("journal I/O error: {e}"),
        }
    }
}

/// Frames one record payload.
fn frame(json: &str) -> String {
    format!(
        "{MAGIC} {:08x} {:016x} {json}\n",
        json.len(),
        fx_hash_one(&json.as_bytes())
    )
}

/// Parses one framed line (without the trailing newline); `None` when
/// the framing or checksum does not hold.
fn parse_line(line: &str) -> Option<Json> {
    let rest = line.strip_prefix(MAGIC)?.strip_prefix(' ')?;
    let len_hex = rest.get(..8)?;
    let rest = rest.get(8..)?.strip_prefix(' ')?;
    let crc_hex = rest.get(..16)?;
    let json = rest.get(16..)?.strip_prefix(' ')?;
    let len = usize::from_str_radix(len_hex, 16).ok()?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if json.len() != len || fx_hash_one(&json.as_bytes()) != crc {
        return None;
    }
    Json::parse(json).ok()
}

impl Journal {
    /// Opens (creating if absent) the journal at `path`, replays its
    /// valid records and positions the file for appending. A torn
    /// final line is truncated away so the next append starts on a
    /// clean frame boundary.
    ///
    /// # Errors
    ///
    /// [`JournalError`] when the file cannot be opened, read or
    /// truncated.
    pub fn open(path: &Path) -> Result<(Journal, Replay), JournalError> {
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut raw = String::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_string(&mut raw)?;

        let mut replay = Replay::default();
        let mut valid_end = 0usize;
        let mut cursor = 0usize;
        for line in raw.split_inclusive('\n') {
            let start = cursor;
            cursor += line.len();
            let Some(framed) = line.strip_suffix('\n') else {
                // No newline: the write was torn mid-line.
                replay.torn_tail = true;
                continue;
            };
            match parse_line(framed) {
                Some(record) => {
                    replay.records.push(record);
                    // Everything up to and including this line is good
                    // (earlier corrupt lines stay in place; only the
                    // tail past the last valid line may be cut).
                    valid_end = start + line.len();
                }
                None => replay.corrupt += 1,
            }
        }
        // Truncate a torn tail so the next append frames cleanly. Keep
        // corrupt-but-complete lines before the last valid record —
        // they are evidence, and replay skips them anyway.
        if replay.torn_tail {
            // Anything after the last valid line is the torn region
            // (complete corrupt lines there are dropped with it).
            if valid_end < raw.len() {
                let corrupt_after: u64 = raw[valid_end..]
                    .split_inclusive('\n')
                    .filter(|l| l.ends_with('\n'))
                    .count() as u64;
                replay.corrupt = replay.corrupt.saturating_sub(corrupt_after);
            }
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Journal {
                file: Mutex::new(file),
                path: path.to_path_buf(),
            },
            replay,
        ))
    }

    /// The journal's path (surfaced in `/metrics`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record; `sync` additionally fsyncs (used for
    /// terminal job states so acknowledged outcomes survive a crash).
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure or an armed `serve.journal`
    /// failpoint.
    pub fn append(&self, record: &Json, sync: bool) -> Result<(), JournalError> {
        // Failpoint: journal faults must degrade to counted write
        // drops, never take a job (or the daemon) down with them.
        fault::check("serve.journal").map_err(|e| JournalError {
            message: e.to_string(),
        })?;
        let framed = frame(&record.render());
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(framed.as_bytes())?;
        if sync {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Fsyncs the journal (shutdown path).
    ///
    /// # Errors
    ///
    /// [`JournalError`] on I/O failure.
    pub fn sync(&self) -> Result<(), JournalError> {
        self.file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(n: i128) -> Json {
        Json::obj(vec![("rec", Json::str("test")), ("n", Json::Int(n))])
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("soctam-journal-{name}-{}", std::process::id()));
        path
    }

    #[test]
    fn roundtrips_records() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, replay) = Journal::open(&path).unwrap();
            assert!(replay.records.is_empty());
            journal.append(&record(1), false).unwrap();
            journal.append(&record(2), true).unwrap();
        }
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.corrupt, 0);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records[1].get("n"), Some(&Json::Int(2)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_kept() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.append(&record(1), true).unwrap();
        }
        // Simulate a crash mid-write: a partial frame with no newline.
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(b"SJ1 000000ff 00").unwrap();
        drop(file);

        let (journal, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(replay.torn_tail);
        // Appending after recovery lands on a clean frame boundary.
        journal.append(&record(2), true).unwrap();
        drop(journal);
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupted_checksum_mid_file_is_skipped_not_fatal() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let (journal, _) = Journal::open(&path).unwrap();
            journal.append(&record(1), false).unwrap();
        }
        // A complete line whose checksum does not match its payload.
        let bogus = format!("{MAGIC} {:08x} {:016x} {}\n", 7, 0u64, r#"{"x":1}"#);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(bogus.as_bytes()).unwrap();
        drop(file);
        {
            let (journal, replay) = Journal::open(&path).unwrap();
            assert_eq!(replay.records.len(), 1, "corrupt line skipped");
            assert_eq!(replay.corrupt, 1);
            journal.append(&record(3), true).unwrap();
        }
        let (_, replay) = Journal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2, "records after corruption apply");
        assert_eq!(replay.corrupt, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bad_length_prefix_is_corruption() {
        assert!(parse_line("SJ1 zzzzzzzz 0000000000000000 {}").is_none());
        assert!(parse_line("nonsense").is_none());
        let good = frame(r#"{"a":1}"#);
        assert!(parse_line(good.trim_end()).is_some());
    }
}
