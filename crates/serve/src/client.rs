//! A minimal std-only HTTP client for the daemon's API.
//!
//! Exists so tests, `soctam-servectl` and the CI smoke job can talk to
//! a running daemon without any third-party dependency. One request per
//! connection, mirroring the server's `Connection: close` framing.
//!
//! [`request_with_retry`] layers deterministic exponential backoff on
//! top: connect failures and 429/503 responses are retried with
//! seeded jitter from [`soctam_exec::Rng`], honoring the server's
//! `Retry-After` pacing hint. The attempt schedule is a pure function
//! of the [`RetryPolicy`], so tests can pin it exactly.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use soctam_exec::Rng;

use crate::http::IO_TIMEOUT;

/// A completed exchange: status code and response body.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the daemon always sends JSON).
    pub body: String,
    /// The `Retry-After` header in seconds, when the server sent one
    /// (429/503 rejections carry it as a pacing hint).
    pub retry_after: Option<u64>,
}

/// A client-side failure (connect, I/O, malformed response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError {
            message: format!("socket error: {e}"),
        }
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// [`ClientError`] on connect/I-O failure or a malformed status line.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError {
        message: format!("cannot connect to `{addr}`: {e}"),
    })?;
    stream.set_read_timeout(Some(read_deadline()))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| ClientError {
        message: "response has no header/body separator".to_owned(),
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError {
            message: format!(
                "malformed status line: `{}`",
                head.lines().next().unwrap_or("")
            ),
        })?;
    Ok(ClientResponse {
        status,
        body: body.to_owned(),
        retry_after: retry_after_seconds(head),
    })
}

/// GET convenience wrapper.
///
/// # Errors
///
/// Same contract as [`request`].
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "GET", path, "")
}

/// POST convenience wrapper.
///
/// # Errors
///
/// Same contract as [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "POST", path, body)
}

/// Parses a `Retry-After: <seconds>` header out of a raw response head.
fn retry_after_seconds(head: &str) -> Option<u64> {
    head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("retry-after") {
            value.trim().parse().ok()
        } else {
            None
        }
    })
}

/// Deterministic exponential-backoff policy for [`request_with_retry`].
///
/// Attempt `k` (0-based) that fails retriably waits
/// `delay_ms(k) = half + jitter` where `half = min(cap_ms, base_ms << k) / 2`
/// and `jitter ∈ [0, half]` comes from a seeded
/// [`Rng`] stream — so the full schedule is a pure
/// function of the policy and identical on every run. A server
/// `Retry-After: <s>` hint overrides the computed delay (clamped to
/// `cap_ms`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (the first try included). 1 disables retries.
    pub max_attempts: u32,
    /// Base delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub cap_ms: u64,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 100,
            cap_ms: 5_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The default policy with a caller-chosen jitter seed.
    pub fn seeded(seed: u64) -> Self {
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        }
    }

    /// The deterministic backoff delay (ms) after failed attempt `k`
    /// (0-based), before any `Retry-After` override.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let raw = self
            .base_ms
            .saturating_shl(attempt.min(32))
            .min(self.cap_ms.max(1));
        let half = raw / 2;
        // Decorrelated jitter in [half, raw]: a fresh derived stream
        // per attempt keeps the schedule independent of call order.
        half + Rng::derive(self.seed, u64::from(attempt)).below(half + 1)
    }

    /// The full backoff schedule: one delay per possible retry.
    pub fn schedule(&self) -> Vec<u64> {
        (0..self.max_attempts.saturating_sub(1))
            .map(|k| self.delay_ms(k))
            .collect()
    }
}

/// Helper: `u64` shift that saturates instead of wrapping for large
/// attempt counts.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// True when a response status should be retried (the server asked for
/// pacing, or is mid-shutdown).
fn retriable(status: u16) -> bool {
    status == 429 || status == 503
}

/// [`request`] with deterministic seeded retries on connect errors and
/// 429/503 responses, honoring `Retry-After` (clamped to the policy
/// cap). Non-retriable responses — including 4xx/5xx errors other than
/// 429/503 — return immediately.
///
/// # Errors
///
/// The final [`ClientError`] once `max_attempts` is exhausted.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    policy: &RetryPolicy,
) -> Result<ClientResponse, ClientError> {
    let attempts = policy.max_attempts.max(1);
    let mut last: Option<Result<ClientResponse, ClientError>> = None;
    for attempt in 0..attempts {
        let outcome = request(addr, method, path, body);
        match &outcome {
            Ok(response) if !retriable(response.status) => return outcome,
            _ => {}
        }
        if attempt + 1 == attempts {
            return outcome;
        }
        let hinted = match &outcome {
            Ok(response) => response.retry_after.map(|s| s.saturating_mul(1_000)),
            Err(_) => None,
        };
        let delay = hinted
            .unwrap_or_else(|| policy.delay_ms(attempt))
            .min(policy.cap_ms.max(1));
        std::thread::sleep(Duration::from_millis(delay));
        last = Some(outcome);
    }
    // Unreachable: the loop always returns on its final attempt; keep
    // the last outcome as a defensive fallback.
    last.unwrap_or_else(|| {
        Err(ClientError {
            message: "retry loop made no attempt".to_owned(),
        })
    })
}

/// Optimization jobs can legitimately run far longer than a framing
/// timeout; the client waits generously for the response to start.
fn read_deadline() -> Duration {
    IO_TIMEOUT.saturating_mul(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_header_parses_case_insensitively() {
        let head = "HTTP/1.1 429 Too Many Requests\r\nretry-after: 7\r\nContent-Length: 0";
        assert_eq!(retry_after_seconds(head), Some(7));
        assert_eq!(retry_after_seconds("HTTP/1.1 200 OK"), None);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_pinned() {
        // The exact schedule for the default policy at seed 42. Pinned
        // on purpose: any change to the backoff math or the jitter
        // stream is a visible, reviewed diff.
        let policy = RetryPolicy::seeded(42);
        let schedule = policy.schedule();
        assert_eq!(schedule, policy.schedule(), "schedule is a pure function");
        assert_eq!(schedule.len(), 4, "max_attempts 5 -> 4 retries");
        for (k, &delay) in schedule.iter().enumerate() {
            let raw = (policy.base_ms << k).min(policy.cap_ms);
            assert!(
                delay >= raw / 2 && delay <= raw,
                "delay {delay} outside [{}, {raw}] at attempt {k}",
                raw / 2
            );
        }
        assert_eq!(schedule, vec![75, 150, 362, 646]);
    }

    #[test]
    fn backoff_caps_and_never_overflows() {
        let policy = RetryPolicy {
            max_attempts: 80,
            base_ms: 100,
            cap_ms: 1_000,
            seed: 1,
        };
        for k in 0..79 {
            assert!(policy.delay_ms(k) <= 1_000);
        }
    }

    #[test]
    fn retries_are_capped_on_connect_errors() {
        // Nothing listens on this address (reserved TEST-NET-3).
        let policy = RetryPolicy {
            max_attempts: 2,
            base_ms: 1,
            cap_ms: 2,
            seed: 0,
        };
        let result = request_with_retry("127.0.0.1:1", "GET", "/healthz", "", &policy);
        assert!(result.is_err(), "no daemon -> error after capped retries");
    }
}
