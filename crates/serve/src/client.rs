//! A minimal std-only HTTP client for the daemon's API.
//!
//! Exists so tests, `soctam-servectl` and the CI smoke job can talk to
//! a running daemon without any third-party dependency. One request per
//! connection, mirroring the server's `Connection: close` framing.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crate::http::IO_TIMEOUT;

/// A completed exchange: status code and response body.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (the daemon always sends JSON).
    pub body: String,
}

/// A client-side failure (connect, I/O, malformed response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClientError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError {
            message: format!("socket error: {e}"),
        }
    }
}

/// Sends one request and reads the full response.
///
/// # Errors
///
/// [`ClientError`] on connect/I-O failure or a malformed status line.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr).map_err(|e| ClientError {
        message: format!("cannot connect to `{addr}`: {e}"),
    })?;
    stream.set_read_timeout(Some(read_deadline()))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or_else(|| ClientError {
        message: "response has no header/body separator".to_owned(),
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| ClientError {
            message: format!(
                "malformed status line: `{}`",
                head.lines().next().unwrap_or("")
            ),
        })?;
    Ok(ClientResponse {
        status,
        body: body.to_owned(),
    })
}

/// GET convenience wrapper.
///
/// # Errors
///
/// Same contract as [`request`].
pub fn get(addr: &str, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "GET", path, "")
}

/// POST convenience wrapper.
///
/// # Errors
///
/// Same contract as [`request`].
pub fn post(addr: &str, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "POST", path, body)
}

/// Optimization jobs can legitimately run far longer than a framing
/// timeout; the client waits generously for the response to start.
fn read_deadline() -> Duration {
    IO_TIMEOUT.saturating_mul(10)
}
