//! `soctam-serve` — the multi-tenant optimization daemon.
//!
//! A long-running HTTP/1.1 service exposing the same schema-driven tool
//! registry the `soctam` CLI is generated from
//! ([`soctam_registry::standard_registry`]); a tool invoked over HTTP
//! returns the byte-identical report the CLI prints. Std-only by
//! workspace policy: hand-rolled HTTP framing and JSON, no third-party
//! dependencies.
//!
//! Endpoints:
//!
//! | route | purpose |
//! |-------|---------|
//! | `GET /v1/tools` | the registry schema (names, summaries, typed params) |
//! | `POST /v1/tools/<name>` | run a tool: `{"soc": "d695", "params": {...}, "deadline_ms": 500}` |
//! | `GET /metrics` | server, cache and pool counters as JSON |
//! | `GET /healthz` | liveness and in-flight gauge |
//! | `POST /admin/shutdown` | graceful stop (drains running jobs) |
//!
//! Multi-tenant means shared, bounded resources: one worker [`Pool`]
//! (total parallelism = `--jobs`, whatever the request mix), one warm
//! [`EvalCache`] keyed by context-mixed fingerprints (cross-request
//! hits are safe across different SOCs and budgets), `--max-inflight`
//! admission control with structured `429` rejections, and per-request
//! `deadline_ms` budgets that degrade to best-so-far results instead of
//! failing.
//!
//! [`Pool`]: soctam::Pool
//! [`EvalCache`]: soctam::EvalCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
mod server;

pub use server::{ServeError, Server, ServerConfig};
