//! `soctam-serve` — the multi-tenant optimization daemon.
//!
//! A long-running HTTP/1.1 service exposing the same schema-driven tool
//! registry the `soctam` CLI is generated from
//! ([`soctam_registry::standard_registry`]); a tool invoked over HTTP
//! returns the byte-identical report the CLI prints. Std-only by
//! workspace policy: hand-rolled HTTP framing and JSON, no third-party
//! dependencies.
//!
//! Endpoints:
//!
//! | route | purpose |
//! |-------|---------|
//! | `GET /v1/tools` | the registry schema (names, summaries, typed params) |
//! | `POST /v1/tools/<name>` | run a tool: `{"soc": "d695", "params": {...}, "deadline_ms": 500}` |
//! | `POST /v1/jobs` | enqueue a tool run: `{"tool": "optimize", "request": {...}}` → 202 + job ID |
//! | `GET /v1/jobs` | summary of every known job |
//! | `GET /v1/jobs/<id>` | job status, progress checkpoint and (once terminal) the result |
//! | `DELETE /v1/jobs/<id>` | cooperative cancel: degrades a running job to best-so-far |
//! | `GET /metrics` | server, job, cache and pool counters as JSON |
//! | `GET /healthz` | liveness and in-flight gauge |
//! | `POST /admin/shutdown` | graceful stop (drains the queue, degrades running jobs) |
//!
//! Multi-tenant means shared, bounded resources: one worker [`Pool`]
//! (total parallelism = `--jobs`, whatever the request mix), one warm
//! [`EvalCache`] keyed by context-mixed fingerprints (cross-request
//! hits are safe across different SOCs and budgets), `--max-inflight`
//! admission control with structured `429` rejections carrying
//! `Retry-After`, and per-request `deadline_ms` budgets that degrade to
//! best-so-far results instead of failing.
//!
//! Resilience: the async job subsystem has a bounded FIFO, cooperative
//! cancellation tokens and an optional write-ahead [`journal`] —
//! acknowledged terminal outcomes survive `kill -9`, and interrupted
//! jobs re-run to bit-identical results on restart (the whole pipeline
//! is deterministic). [`client::request_with_retry`] gives clients
//! deterministic seeded backoff against 429/503 pacing.
//!
//! [`Pool`]: soctam::Pool
//! [`EvalCache`]: soctam::EvalCache

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod http;
mod job;
pub mod journal;
mod server;

pub use server::{RecoverMode, ServeError, Server, ServerConfig};
