//! A multilevel k-way hypergraph partitioner.
//!
//! The DAC'07 paper formulates its horizontal SI test compaction as a
//! hypergraph partitioning problem and reuses the hMetis package. hMetis is
//! proprietary and unavailable here, so this crate implements the same
//! algorithm family from scratch:
//!
//! 1. **Coarsening** — heavy-edge vertex matching contracts the hypergraph
//!    until it is small;
//! 2. **Initial partitioning** — randomized greedy region growing on the
//!    coarsest level, best of several seeds;
//! 3. **Uncoarsening + FM refinement** — the Fiduccia–Mattheyses pass with
//!    rollback to the best prefix, at every level;
//! 4. **k-way** — recursive bisection with proportional weight targets.
//!
//! The objective is the weighted cut (total weight of hyperedges spanning
//! more than one part) under a vertex-weight balance constraint.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soctam_hypergraph::{HypergraphBuilder, PartitionConfig};
//!
//! // Two naturally separable clusters {0,1,2} and {3,4,5} plus one
//! // straddling edge.
//! let mut b = HypergraphBuilder::new();
//! for _ in 0..6 {
//!     b.add_vertex(1);
//! }
//! b.add_edge(10, &[0, 1, 2])?;
//! b.add_edge(10, &[3, 4, 5])?;
//! b.add_edge(1, &[2, 3])?;
//! let hg = b.build();
//! let partition = hg.partition(&PartitionConfig::new(2))?;
//! assert_eq!(partition.cut_weight(&hg), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod bisect;
mod coarsen;
mod error;
mod fm;
mod graph;
mod partition;

pub use error::HypergraphError;
pub use graph::{Hypergraph, HypergraphBuilder};
pub use partition::{Partition, PartitionConfig};
