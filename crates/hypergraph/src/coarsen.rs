//! Heavy-edge coarsening.

use soctam_exec::Rng;

use std::collections::BTreeMap;

use crate::graph::{Hypergraph, HypergraphBuilder};

/// One coarsening level: the contracted hypergraph plus the fine→coarse
/// vertex map.
#[derive(Debug)]
pub(crate) struct CoarseLevel {
    pub graph: Hypergraph,
    pub map: Vec<u32>,
}

/// Contracts a maximal heavy-edge matching. Returns `None` when matching
/// achieves less than a 5 % reduction (coarsening has converged).
// Invariant: projected pins are renumbered through the coarse map, so every pin indexes a declared vertex.
#[allow(clippy::expect_used)]
pub(crate) fn coarsen_once(hg: &Hypergraph, rng: &mut Rng) -> Option<CoarseLevel> {
    let n = hg.num_vertices();
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);

    let mut mate: Vec<Option<u32>> = vec![None; n];
    // Heavy-edge matching: connect v to the unmatched neighbour with the
    // largest total connectivity sum(w(e) / (|e| - 1)) over shared edges.
    // Sorted keys: `max_by` breaks score ties by vertex id, so the
    // chosen mate never depends on map iteration order.
    let mut score: BTreeMap<u32, f64> = BTreeMap::new();
    for &v in &order {
        if mate[v as usize].is_some() {
            continue;
        }
        score.clear();
        for &e in hg.incident_edges(v) {
            let pins = hg.pins(e);
            if pins.len() < 2 {
                continue;
            }
            let contribution = hg.edge_weight(e) as f64 / (pins.len() - 1) as f64;
            for &u in pins {
                if u != v && mate[u as usize].is_none() {
                    *score.entry(u).or_insert(0.0) += contribution;
                }
            }
        }
        let best = score
            .iter()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(a.0))
            })
            .map(|(&u, _)| u);
        if let Some(u) = best {
            mate[v as usize] = Some(u);
            mate[u as usize] = Some(v);
        }
    }

    // Assign coarse ids (matched pairs share one id).
    let mut coarse_of = vec![u32::MAX; n];
    let mut coarse_weights: Vec<u64> = Vec::new();
    for v in 0..n as u32 {
        if coarse_of[v as usize] != u32::MAX {
            continue;
        }
        let id = coarse_weights.len() as u32;
        coarse_of[v as usize] = id;
        let mut weight = hg.vertex_weight(v);
        if let Some(u) = mate[v as usize] {
            coarse_of[u as usize] = id;
            weight += hg.vertex_weight(u);
        }
        coarse_weights.push(weight);
    }

    let coarse_n = coarse_weights.len();
    if coarse_n as f64 > n as f64 * 0.95 {
        return None;
    }

    // Project edges, dropping single-pin edges and merging identical pin
    // sets (summing weights).
    let mut merged: BTreeMap<Vec<u32>, u64> = BTreeMap::new();
    for e in 0..hg.num_edges() as u32 {
        let mut pins: Vec<u32> = hg.pins(e).iter().map(|&v| coarse_of[v as usize]).collect();
        pins.sort_unstable();
        pins.dedup();
        if pins.len() < 2 {
            continue;
        }
        *merged.entry(pins).or_insert(0) += hg.edge_weight(e);
    }

    let mut builder = HypergraphBuilder::new();
    for &w in &coarse_weights {
        builder.add_vertex(w);
    }
    // Deterministic edge order: BTreeMap iterates sorted by pin list.
    for (pins, weight) in merged {
        builder
            .add_edge(weight, &pins)
            .expect("projected pins are in range");
    }

    Some(CoarseLevel {
        graph: builder.build(),
        map: coarse_of,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    fn chain_graph(n: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(1);
        }
        for v in 0..n - 1 {
            b.add_edge(1, &[v, v + 1]).expect("valid");
        }
        b.build()
    }

    #[test]
    fn coarsening_reduces_vertices_and_preserves_weight() {
        let hg = chain_graph(32);
        let mut rng = Rng::seed_from_u64(1);
        let level = coarsen_once(&hg, &mut rng).expect("chain coarsens");
        assert!(level.graph.num_vertices() < 32);
        assert_eq!(level.graph.total_vertex_weight(), 32);
        assert_eq!(level.map.len(), 32);
    }

    #[test]
    fn map_targets_are_valid_coarse_vertices() {
        let hg = chain_graph(17);
        let mut rng = Rng::seed_from_u64(2);
        let level = coarsen_once(&hg, &mut rng).expect("chain coarsens");
        let coarse_n = level.graph.num_vertices() as u32;
        assert!(level.map.iter().all(|&c| c < coarse_n));
    }

    #[test]
    fn edgeless_graph_does_not_coarsen() {
        let mut b = HypergraphBuilder::new();
        for _ in 0..8 {
            b.add_vertex(1);
        }
        let hg = b.build();
        let mut rng = Rng::seed_from_u64(3);
        assert!(coarsen_once(&hg, &mut rng).is_none());
    }

    #[test]
    fn parallel_edges_merge() {
        let mut b = HypergraphBuilder::new();
        for _ in 0..4 {
            b.add_vertex(1);
        }
        // v0-v1 matched together will collapse the {0,1} edges away and the
        // two {0,2} and {1,2} edges may merge; total edge weight across cut
        // structure is preserved or reduced only by internal edges.
        b.add_edge(3, &[0, 1]).expect("valid");
        b.add_edge(2, &[0, 1]).expect("valid");
        b.add_edge(1, &[0, 2]).expect("valid");
        b.add_edge(1, &[1, 2]).expect("valid");
        b.add_edge(1, &[2, 3]).expect("valid");
        let hg = b.build();
        let mut rng = Rng::seed_from_u64(4);
        let level = coarsen_once(&hg, &mut rng).expect("coarsens");
        // No coarse edge may have duplicate pins.
        for e in 0..level.graph.num_edges() as u32 {
            let pins = level.graph.pins(e);
            assert!(pins.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
