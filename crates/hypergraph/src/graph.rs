//! The hypergraph data structure (CSR pins plus vertex incidence).

use crate::HypergraphError;

/// An immutable weighted hypergraph.
///
/// Build one with [`HypergraphBuilder`]; vertices and hyperedges are dense
/// indices. Pin lists and vertex incidence are stored in CSR form.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_hypergraph::HypergraphBuilder;
///
/// let mut b = HypergraphBuilder::new();
/// let v0 = b.add_vertex(3);
/// let v1 = b.add_vertex(5);
/// b.add_edge(2, &[v0, v1])?;
/// let hg = b.build();
/// assert_eq!(hg.num_vertices(), 2);
/// assert_eq!(hg.total_vertex_weight(), 8);
/// assert_eq!(hg.pins(0), &[0, 1]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hypergraph {
    vertex_weights: Vec<u64>,
    edge_weights: Vec<u64>,
    /// CSR offsets into `pins`; length `edges + 1`.
    edge_offsets: Vec<usize>,
    pins: Vec<u32>,
    /// CSR offsets into `incident`; length `vertices + 1`.
    vertex_offsets: Vec<usize>,
    /// Edge indices incident to each vertex.
    incident: Vec<u32>,
}

impl Hypergraph {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edge_weights.len()
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_weight(&self, v: u32) -> u64 {
        self.vertex_weights[v as usize]
    }

    /// Weight of hyperedge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge_weight(&self, e: u32) -> u64 {
        self.edge_weights[e as usize]
    }

    /// The pin (vertex) list of hyperedge `e`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn pins(&self, e: u32) -> &[u32] {
        &self.pins[self.edge_offsets[e as usize]..self.edge_offsets[e as usize + 1]]
    }

    /// The hyperedges incident to vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn incident_edges(&self, v: u32) -> &[u32] {
        &self.incident[self.vertex_offsets[v as usize]..self.vertex_offsets[v as usize + 1]]
    }

    /// Sum of all vertex weights.
    pub fn total_vertex_weight(&self) -> u64 {
        self.vertex_weights.iter().sum()
    }

    /// Sum of all hyperedge weights.
    pub fn total_edge_weight(&self) -> u64 {
        self.edge_weights.iter().sum()
    }
}

/// Incremental builder for [`Hypergraph`].
#[derive(Clone, Debug, Default)]
pub struct HypergraphBuilder {
    vertex_weights: Vec<u64>,
    edge_weights: Vec<u64>,
    edge_pins: Vec<Vec<u32>>,
}

impl HypergraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HypergraphBuilder::default()
    }

    /// Adds a vertex with the given weight; returns its index.
    pub fn add_vertex(&mut self, weight: u64) -> u32 {
        self.vertex_weights.push(weight);
        (self.vertex_weights.len() - 1) as u32
    }

    /// Adds one vertex per weight in `weights`; returns the index of the
    /// first added vertex (indices are consecutive).
    pub fn add_vertices(&mut self, weights: impl IntoIterator<Item = u64>) -> u32 {
        let first = self.vertex_weights.len() as u32;
        self.vertex_weights.extend(weights);
        first
    }

    /// Adds a hyperedge with the given weight over `pins`.
    ///
    /// Pins are sorted and deduplicated; a single-pin edge is accepted (it
    /// can never be cut and is ignored by partitioning).
    ///
    /// # Errors
    ///
    /// [`HypergraphError::EmptyEdge`] when `pins` is empty and
    /// [`HypergraphError::PinOutOfRange`] when a pin references a vertex
    /// that has not been added.
    pub fn add_edge(&mut self, weight: u64, pins: &[u32]) -> Result<u32, HypergraphError> {
        if pins.is_empty() {
            return Err(HypergraphError::EmptyEdge);
        }
        for &pin in pins {
            if pin as usize >= self.vertex_weights.len() {
                return Err(HypergraphError::PinOutOfRange {
                    vertex: pin,
                    vertices: self.vertex_weights.len(),
                });
            }
        }
        let mut sorted = pins.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        self.edge_weights.push(weight);
        self.edge_pins.push(sorted);
        Ok((self.edge_weights.len() - 1) as u32)
    }

    /// Current number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertex_weights.len()
    }

    /// Finalizes the hypergraph (computes CSR layouts).
    pub fn build(self) -> Hypergraph {
        let num_vertices = self.vertex_weights.len();
        let mut edge_offsets = Vec::with_capacity(self.edge_pins.len() + 1);
        edge_offsets.push(0usize);
        let mut pins = Vec::new();
        for edge in &self.edge_pins {
            pins.extend_from_slice(edge);
            edge_offsets.push(pins.len());
        }

        let mut degree = vec![0usize; num_vertices];
        for &pin in &pins {
            degree[pin as usize] += 1;
        }
        let mut vertex_offsets = Vec::with_capacity(num_vertices + 1);
        vertex_offsets.push(0usize);
        for v in 0..num_vertices {
            vertex_offsets.push(vertex_offsets[v] + degree[v]);
        }
        let mut cursor = vertex_offsets.clone();
        let mut incident = vec![0u32; pins.len()];
        for (e, window) in edge_offsets.windows(2).enumerate() {
            for &pin in &pins[window[0]..window[1]] {
                incident[cursor[pin as usize]] = e as u32;
                cursor[pin as usize] += 1;
            }
        }

        Hypergraph {
            vertex_weights: self.vertex_weights,
            edge_weights: self.edge_weights,
            edge_offsets,
            pins,
            vertex_offsets,
            incident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for w in [1u64, 2, 3, 4] {
            b.add_vertex(w);
        }
        b.add_edge(5, &[0, 1]).expect("valid edge");
        b.add_edge(7, &[1, 2, 3]).expect("valid edge");
        b.add_edge(1, &[3]).expect("valid edge");
        b.build()
    }

    #[test]
    fn add_vertices_is_equivalent_to_repeated_add_vertex() {
        let mut a = HypergraphBuilder::new();
        a.add_vertex(9);
        let first = a.add_vertices([1, 2, 3]);
        assert_eq!(first, 1);
        let mut b = HypergraphBuilder::new();
        for w in [9u64, 1, 2, 3] {
            b.add_vertex(w);
        }
        let (a, b) = (a.build(), b.build());
        assert_eq!(a.num_vertices(), b.num_vertices());
        for v in 0..4 {
            assert_eq!(a.vertex_weight(v), b.vertex_weight(v));
        }
    }

    #[test]
    fn csr_layout_is_consistent() {
        let hg = sample();
        assert_eq!(hg.num_vertices(), 4);
        assert_eq!(hg.num_edges(), 3);
        assert_eq!(hg.pins(0), &[0, 1]);
        assert_eq!(hg.pins(1), &[1, 2, 3]);
        assert_eq!(hg.pins(2), &[3]);
    }

    #[test]
    fn incidence_inverts_pins() {
        let hg = sample();
        for e in 0..hg.num_edges() as u32 {
            for &v in hg.pins(e) {
                assert!(hg.incident_edges(v).contains(&e));
            }
        }
        assert_eq!(hg.incident_edges(1), &[0, 1]);
        assert_eq!(hg.incident_edges(3), &[1, 2]);
    }

    #[test]
    fn duplicate_pins_are_removed() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        b.add_vertex(1);
        let e = b.add_edge(1, &[1, 0, 1]).expect("valid edge");
        let hg = b.build();
        assert_eq!(hg.pins(e), &[0, 1]);
    }

    #[test]
    fn pin_out_of_range_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        assert!(matches!(
            b.add_edge(1, &[0, 1]),
            Err(HypergraphError::PinOutOfRange { vertex: 1, .. })
        ));
    }

    #[test]
    fn empty_edge_rejected() {
        let mut b = HypergraphBuilder::new();
        b.add_vertex(1);
        assert!(matches!(
            b.add_edge(1, &[]),
            Err(HypergraphError::EmptyEdge)
        ));
    }

    #[test]
    fn totals_sum_weights() {
        let hg = sample();
        assert_eq!(hg.total_vertex_weight(), 10);
        assert_eq!(hg.total_edge_weight(), 13);
    }
}
