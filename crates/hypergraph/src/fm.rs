//! Fiduccia–Mattheyses bisection refinement with best-prefix rollback.

use crate::Hypergraph;

/// Refines a bisection in place. `caps = [cap0, cap1]` bound the part
/// weights; moves that worsen an already-satisfied cap are inadmissible,
/// while moves that shrink an overweight side are always admissible.
/// Runs up to `max_passes` FM passes, stopping early when a pass yields no
/// improvement. Returns the final cut weight.
pub(crate) fn refine(hg: &Hypergraph, side: &mut [bool], caps: [u64; 2], max_passes: u32) -> u64 {
    debug_assert_eq!(side.len(), hg.num_vertices());
    let mut cut = cut_weight(hg, side);
    for _ in 0..max_passes {
        let improvement = fm_pass(hg, side, caps, cut);
        if improvement == 0 {
            break;
        }
        cut -= improvement;
        debug_assert_eq!(cut, cut_weight(hg, side));
    }
    cut
}

/// The weighted cut of a bisection.
pub(crate) fn cut_weight(hg: &Hypergraph, side: &[bool]) -> u64 {
    let mut cut = 0;
    for e in 0..hg.num_edges() as u32 {
        let pins = hg.pins(e);
        if let Some((&first, rest)) = pins.split_first() {
            let s = side[first as usize];
            if rest.iter().any(|&v| side[v as usize] != s) {
                cut += hg.edge_weight(e);
            }
        }
    }
    cut
}

/// One FM pass: tentatively moves every vertex once (highest gain first,
/// balance permitting), then rolls back to the best prefix. Returns the cut
/// improvement achieved (0 when the pass failed to improve).
fn fm_pass(hg: &Hypergraph, side: &mut [bool], caps: [u64; 2], initial_cut: u64) -> u64 {
    let n = hg.num_vertices();
    let num_edges = hg.num_edges();

    // Pin counts per edge per side.
    let mut counts = vec![[0u32; 2]; num_edges];
    for e in 0..num_edges as u32 {
        for &v in hg.pins(e) {
            counts[e as usize][usize::from(side[v as usize])] += 1;
        }
    }
    let mut weights = [0u64; 2];
    for v in 0..n {
        weights[usize::from(side[v])] += hg.vertex_weight(v as u32);
    }

    let gain_of = |v: u32, side: &[bool], counts: &[[u32; 2]]| -> i64 {
        let s = usize::from(side[v as usize]);
        let mut gain = 0i64;
        for &e in hg.incident_edges(v) {
            let c = counts[e as usize];
            if c[s] + c[1 - s] < 2 {
                continue; // single-pin edge
            }
            if c[s] == 1 {
                gain += hg.edge_weight(e) as i64; // move uncuts the edge
            } else if c[1 - s] == 0 {
                gain -= hg.edge_weight(e) as i64; // move cuts the edge
            }
        }
        gain
    };

    let mut gains: Vec<i64> = (0..n as u32).map(|v| gain_of(v, side, &counts)).collect();
    let mut moved = vec![false; n];
    let mut sequence: Vec<u32> = Vec::with_capacity(n);
    let mut cumulative: i64 = 0;
    let mut best_cumulative: i64 = 0;
    let mut best_prefix: usize = 0;

    for _ in 0..n {
        // Select the admissible unmoved vertex with the highest gain.
        let mut chosen: Option<u32> = None;
        let mut chosen_gain = i64::MIN;
        for v in 0..n as u32 {
            if moved[v as usize] {
                continue;
            }
            let s = usize::from(side[v as usize]);
            let w = hg.vertex_weight(v);
            let admissible = weights[1 - s] + w <= caps[1 - s] || weights[s] > caps[s];
            if admissible && gains[v as usize] > chosen_gain {
                chosen = Some(v);
                chosen_gain = gains[v as usize];
            }
        }
        let Some(v) = chosen else { break };

        // Apply the move and update edge counts + neighbour gains.
        let s = usize::from(side[v as usize]);
        moved[v as usize] = true;
        side[v as usize] = !side[v as usize];
        weights[s] -= hg.vertex_weight(v);
        weights[1 - s] += hg.vertex_weight(v);
        for &e in hg.incident_edges(v) {
            counts[e as usize][s] -= 1;
            counts[e as usize][1 - s] += 1;
        }
        for &e in hg.incident_edges(v) {
            for &u in hg.pins(e) {
                if !moved[u as usize] {
                    gains[u as usize] = gain_of(u, side, &counts);
                }
            }
        }

        cumulative += chosen_gain;
        sequence.push(v);
        if cumulative > best_cumulative {
            best_cumulative = cumulative;
            best_prefix = sequence.len();
        }
    }

    // Roll back every move after the best prefix.
    for &v in &sequence[best_prefix..] {
        side[v as usize] = !side[v as usize];
    }
    debug_assert!(best_cumulative >= 0);
    debug_assert_eq!(
        initial_cut as i64 - best_cumulative,
        cut_weight(hg, side) as i64
    );
    best_cumulative as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn clusters() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..8 {
            b.add_vertex(1);
        }
        b.add_edge(5, &[0, 1, 2, 3]).expect("valid");
        b.add_edge(5, &[4, 5, 6, 7]).expect("valid");
        b.add_edge(1, &[3, 4]).expect("valid");
        b.build()
    }

    #[test]
    fn refine_recovers_natural_cut_from_bad_start() {
        let hg = clusters();
        // Interleaved start: both big edges cut. Caps mirror what `bisect`
        // would compute: ceil(4 * 1.1) + max vertex weight = 6 — the one
        // unit of slack is what lets FM climb through intermediate states.
        let mut side = vec![false, true, false, true, false, true, false, true];
        let cut = refine(&hg, &mut side, [6, 6], 16);
        assert_eq!(cut, 1);
        // The two clusters are separated.
        assert_eq!(side[0], side[1]);
        assert_eq!(side[1], side[2]);
        assert_eq!(side[2], side[3]);
        assert_eq!(side[4], side[5]);
    }

    #[test]
    fn refine_respects_caps() {
        let hg = clusters();
        let mut side = vec![false, true, false, true, false, true, false, true];
        let _ = refine(&hg, &mut side, [6, 6], 16);
        let w0 = side.iter().filter(|&&s| !s).count();
        assert!(w0 <= 6 && 8 - w0 <= 6, "weights {w0}/{}", 8 - w0);
    }

    #[test]
    fn refine_never_worsens_cut() {
        let hg = clusters();
        let mut side = vec![false, false, false, false, true, true, true, true];
        let before = cut_weight(&hg, &side);
        let after = refine(&hg, &mut side, [5, 5], 16);
        assert!(after <= before);
    }

    #[test]
    fn cut_weight_on_uniform_side_is_zero() {
        let hg = clusters();
        assert_eq!(cut_weight(&hg, &[false; 8]), 0);
    }
}
