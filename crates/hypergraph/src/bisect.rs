//! Multilevel bisection and recursive k-way driver.

use soctam_exec::Rng;

use crate::coarsen::{coarsen_once, CoarseLevel};
use crate::fm::refine;
use crate::graph::{Hypergraph, HypergraphBuilder};
use crate::partition::PartitionConfig;

/// Stop coarsening below this many vertices.
const COARSEN_THRESHOLD: usize = 24;

/// Partitions `hg` into `config.parts` parts by recursive bisection.
/// Preconditions (checked by the caller): `1 <= parts <= num_vertices`,
/// `imbalance` finite and non-negative.
pub(crate) fn recursive_kway(hg: &Hypergraph, config: &PartitionConfig) -> Vec<u32> {
    let mut assignment = vec![0u32; hg.num_vertices()];
    let vertices: Vec<u32> = (0..hg.num_vertices() as u32).collect();
    let mut rng = Rng::seed_from_u64(config.seed);
    split(
        hg,
        &vertices,
        config.parts,
        0,
        config,
        &mut rng,
        &mut assignment,
    );
    assignment
}

/// Recursively assigns `vertices` to parts `first_part .. first_part + k`.
fn split(
    hg: &Hypergraph,
    vertices: &[u32],
    k: u32,
    first_part: u32,
    config: &PartitionConfig,
    rng: &mut Rng,
    assignment: &mut [u32],
) {
    debug_assert!(vertices.len() >= k as usize);
    if k == 1 {
        for &v in vertices {
            assignment[v as usize] = first_part;
        }
        return;
    }

    let k0 = k.div_ceil(2);
    let k1 = k - k0;
    let (induced, _) = induce(hg, vertices);
    let side = bisect(
        &induced,
        f64::from(k0) / f64::from(k),
        (k0 as usize, k1 as usize),
        config,
        rng,
    );

    let mut left = Vec::new();
    let mut right = Vec::new();
    for (i, &v) in vertices.iter().enumerate() {
        if side[i] {
            right.push(v);
        } else {
            left.push(v);
        }
    }
    split(hg, &left, k0, first_part, config, rng, assignment);
    split(hg, &right, k1, first_part + k0, config, rng, assignment);
}

/// Builds the sub-hypergraph induced by `vertices` (edges restricted to the
/// subset; restrictions with fewer than two pins are dropped). Returns the
/// graph and the local→global vertex map (which equals `vertices`).
// Invariant: induced pins are renumbered through the vertex map, so every pin indexes a declared vertex.
#[allow(clippy::expect_used)]
fn induce(hg: &Hypergraph, vertices: &[u32]) -> (Hypergraph, Vec<u32>) {
    let mut local_of = vec![u32::MAX; hg.num_vertices()];
    for (local, &v) in vertices.iter().enumerate() {
        local_of[v as usize] = local as u32;
    }
    let mut builder = HypergraphBuilder::new();
    for &v in vertices {
        builder.add_vertex(hg.vertex_weight(v));
    }
    // Dense visited bitmap over edge ids: cheaper than hashing and
    // iteration-order questions never arise.
    let mut seen = vec![false; hg.num_edges()];
    for &v in vertices {
        for &e in hg.incident_edges(v) {
            if std::mem::replace(&mut seen[e as usize], true) {
                continue;
            }
            let pins: Vec<u32> = hg
                .pins(e)
                .iter()
                .filter_map(|&u| {
                    let l = local_of[u as usize];
                    (l != u32::MAX).then_some(l)
                })
                .collect();
            if pins.len() >= 2 {
                builder
                    .add_edge(hg.edge_weight(e), &pins)
                    .expect("local pins are in range");
            }
        }
    }
    (builder.build(), vertices.to_vec())
}

/// Multilevel bisection of `hg` with target part-0 weight fraction `frac`.
/// `min_counts` are the minimum vertex counts each side must keep so that
/// recursive bisection can still place its parts.
// Invariant: the coarsening chain always holds the level just pushed, and at least one FM try runs per bisection.
#[allow(clippy::expect_used)]
fn bisect(
    hg: &Hypergraph,
    frac: f64,
    min_counts: (usize, usize),
    config: &PartitionConfig,
    rng: &mut Rng,
) -> Vec<bool> {
    // Coarsening chain, but never coarsen below what the count constraints
    // allow to separate.
    let floor = COARSEN_THRESHOLD.max(min_counts.0 + min_counts.1);
    let mut levels: Vec<CoarseLevel> = Vec::new();
    {
        let mut current = hg;
        loop {
            if current.num_vertices() <= floor {
                break;
            }
            match coarsen_once(current, rng) {
                Some(level) if level.graph.num_vertices() >= min_counts.0 + min_counts.1 => {
                    levels.push(level);
                    current = &levels.last().expect("just pushed").graph;
                }
                _ => break,
            }
        }
    }
    let coarsest: &Hypergraph = levels.last().map_or(hg, |l| &l.graph);

    let total = coarsest.total_vertex_weight();
    let caps = caps_for(coarsest, total, frac, config.imbalance);

    // Initial partition: best of several randomized greedy growths.
    let mut best_side: Option<Vec<bool>> = None;
    let mut best_cut = u64::MAX;
    for _ in 0..config.initial_tries.max(1) {
        let mut side = grow_initial(coarsest, frac, rng);
        let cut = refine(coarsest, &mut side, caps, config.max_fm_passes);
        if cut < best_cut || best_side.is_none() {
            best_cut = cut;
            best_side = Some(side);
        }
    }
    let mut side = best_side.expect("at least one try ran");

    // Project back through the levels, refining at each.
    for level in levels.iter().rev() {
        let fine_n = level.map.len();
        let mut fine_side = vec![false; fine_n];
        for v in 0..fine_n {
            fine_side[v] = side[level.map[v] as usize];
        }
        side = fine_side;
        // Note: `level.graph` is the *coarse* graph; the fine graph is the
        // next level down (or `hg` itself). Identify it for refinement.
        let fine_graph: &Hypergraph = {
            let idx = levels
                .iter()
                .position(|l| std::ptr::eq(l, level))
                .expect("level is in the chain");
            if idx == 0 {
                hg
            } else {
                &levels[idx - 1].graph
            }
        };
        let caps = caps_for(
            fine_graph,
            fine_graph.total_vertex_weight(),
            frac,
            config.imbalance,
        );
        refine(fine_graph, &mut side, caps, config.max_fm_passes);
    }

    enforce_min_counts(hg, &mut side, min_counts, config, rng);
    side
}

fn caps_for(hg: &Hypergraph, total: u64, frac: f64, imbalance: f64) -> [u64; 2] {
    let max_vertex = (0..hg.num_vertices() as u32)
        .map(|v| hg.vertex_weight(v))
        .max()
        .unwrap_or(0);
    let cap = |f: f64| ((total as f64) * f * (1.0 + imbalance)).ceil() as u64 + max_vertex;
    [cap(frac), cap(1.0 - frac)]
}

/// Randomized greedy growth: BFS-grow part 0 from a random seed vertex
/// until it reaches the target fraction of the total weight.
fn grow_initial(hg: &Hypergraph, frac: f64, rng: &mut Rng) -> Vec<bool> {
    let n = hg.num_vertices();
    let total = hg.total_vertex_weight();
    let target0 = (total as f64 * frac).round() as u64;
    let mut side = vec![true; n];
    if n == 0 {
        return side;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut order);

    let start = rng.range_usize(0, n) as u32;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut visited = vec![false; n];
    visited[start as usize] = true;
    let mut weight0 = 0u64;
    let mut fallback = order.into_iter();

    while weight0 < target0 {
        let v = match queue.pop_front() {
            Some(v) => v,
            None => {
                // Disconnected remainder: pull the next unvisited vertex.
                let mut next = None;
                for candidate in fallback.by_ref() {
                    if !visited[candidate as usize] {
                        visited[candidate as usize] = true;
                        next = Some(candidate);
                        break;
                    }
                }
                match next {
                    Some(v) => v,
                    None => break,
                }
            }
        };
        side[v as usize] = false;
        weight0 += hg.vertex_weight(v);
        for &e in hg.incident_edges(v) {
            for &u in hg.pins(e) {
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    queue.push_back(u);
                }
            }
        }
    }
    side
}

/// Guarantees each side keeps at least its minimum vertex count by moving
/// the lightest vertices from the larger side (then re-refining lightly).
// Invariant: while one side is short of its minimum the other holds the surplus, so the donor side is never empty.
#[allow(clippy::expect_used)]
fn enforce_min_counts(
    hg: &Hypergraph,
    side: &mut [bool],
    min_counts: (usize, usize),
    config: &PartitionConfig,
    _rng: &mut Rng,
) {
    loop {
        let count0 = side.iter().filter(|&&s| !s).count();
        let count1 = side.len() - count0;
        let (needy_side, donor_is_1) = if count0 < min_counts.0 {
            (false, true)
        } else if count1 < min_counts.1 {
            (true, false)
        } else {
            break;
        };
        // Move the lightest donor vertex across.
        let donor = (0..side.len() as u32)
            .filter(|&v| side[v as usize] == donor_is_1)
            .min_by_key(|&v| hg.vertex_weight(v))
            .expect("donor side cannot be empty while the other is short");
        side[donor as usize] = needy_side;
    }
    let _ = config;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HypergraphBuilder, PartitionConfig};

    fn ring(n: u32) -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..n {
            b.add_vertex(1);
        }
        for v in 0..n {
            b.add_edge(1, &[v, (v + 1) % n]).expect("valid");
        }
        b.build()
    }

    #[test]
    fn ring_bisection_cuts_two_edges() {
        let hg = ring(32);
        let p = hg
            .partition(&PartitionConfig::new(2).with_seed(5))
            .expect("valid");
        assert_eq!(
            p.cut_weight(&hg),
            2,
            "a ring bisection cuts exactly 2 edges"
        );
        let weights = p.part_weights(&hg);
        assert!(weights.iter().all(|&w| (12..=20).contains(&w)));
    }

    #[test]
    fn kway_covers_all_parts() {
        let hg = ring(40);
        for k in [1u32, 2, 3, 4, 8] {
            let p = hg
                .partition(&PartitionConfig::new(k).with_seed(3))
                .expect("valid");
            let weights = p.part_weights(&hg);
            assert_eq!(weights.len(), k as usize);
            assert!(
                weights.iter().all(|&w| w > 0),
                "k={k}: some part empty: {weights:?}"
            );
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let hg = ring(8);
        let (sub, map) = induce(&hg, &[0, 1, 2, 3]);
        assert_eq!(sub.num_vertices(), 4);
        assert_eq!(map, vec![0, 1, 2, 3]);
        // Edges 0-1, 1-2, 2-3 survive; 3-4 and 7-0 drop to one pin.
        assert_eq!(sub.num_edges(), 3);
    }

    #[test]
    fn min_counts_enforced_for_k_equal_n() {
        let hg = ring(6);
        let p = hg
            .partition(&PartitionConfig::new(6).with_seed(1))
            .expect("valid");
        let weights = p.part_weights(&hg);
        assert!(weights.iter().all(|&w| w == 1), "{weights:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let hg = ring(24);
        let a = hg
            .partition(&PartitionConfig::new(4).with_seed(9))
            .expect("valid");
        let b = hg
            .partition(&PartitionConfig::new(4).with_seed(9))
            .expect("valid");
        assert_eq!(a, b);
    }

    #[test]
    fn weighted_vertices_stay_balanced() {
        let mut b = HypergraphBuilder::new();
        for i in 0..16u32 {
            b.add_vertex(u64::from(i % 4) + 1);
        }
        for v in 0..15u32 {
            b.add_edge(1, &[v, v + 1]).expect("valid");
        }
        let hg = b.build();
        let total = hg.total_vertex_weight();
        let p = hg
            .partition(&PartitionConfig::new(2).with_seed(2))
            .expect("valid");
        let weights = p.part_weights(&hg);
        let cap = ((total as f64 / 2.0) * 1.10).ceil() as u64 + 4;
        assert!(weights.iter().all(|&w| w <= cap), "{weights:?} cap {cap}");
    }
}
