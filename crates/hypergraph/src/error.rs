//! Error type for hypergraph construction and partitioning.

use std::error::Error;
use std::fmt;

/// Errors produced by hypergraph construction and partitioning.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum HypergraphError {
    /// A hyperedge referenced a vertex that does not exist (yet).
    PinOutOfRange {
        /// The offending vertex index.
        vertex: u32,
        /// Number of vertices currently in the builder.
        vertices: usize,
    },
    /// A hyperedge must contain at least one pin.
    EmptyEdge,
    /// A partition must have at least one part.
    ZeroParts,
    /// More parts were requested than there are vertices.
    PartsExceedVertices {
        /// Requested part count.
        parts: u32,
        /// Available vertex count.
        vertices: usize,
    },
    /// The imbalance tolerance must be non-negative and finite.
    InvalidImbalance {
        /// The offending value.
        imbalance: f64,
    },
}

impl fmt::Display for HypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypergraphError::PinOutOfRange { vertex, vertices } => {
                write!(f, "pin {vertex} out of range for {vertices} vertices")
            }
            HypergraphError::EmptyEdge => write!(f, "hyperedge has no pins"),
            HypergraphError::ZeroParts => write!(f, "partition needs at least one part"),
            HypergraphError::PartsExceedVertices { parts, vertices } => {
                write!(f, "{parts} parts requested for only {vertices} vertices")
            }
            HypergraphError::InvalidImbalance { imbalance } => {
                write!(
                    f,
                    "imbalance tolerance {imbalance} is not a finite non-negative number"
                )
            }
        }
    }
}

impl Error for HypergraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = HypergraphError::PartsExceedVertices {
            parts: 8,
            vertices: 3,
        };
        assert!(err.to_string().contains('8'));
        assert!(err.to_string().contains('3'));
    }
}
