//! Partition assignments, quality metrics and the public entry point.

use crate::{bisect, Hypergraph, HypergraphError};

/// Configuration for [`Hypergraph::partition`].
///
/// # Example
///
/// ```
/// use soctam_hypergraph::PartitionConfig;
///
/// let config = PartitionConfig::new(4).with_imbalance(0.05).with_seed(99);
/// assert_eq!(config.parts, 4);
/// ```
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::derive_partial_eq_without_eq)]
pub struct PartitionConfig {
    /// Number of parts `k`.
    pub parts: u32,
    /// Allowed relative imbalance `ε`: every part's weight may reach
    /// `(1 + ε) · total / k` (plus one maximal vertex, since vertex weights
    /// are indivisible).
    pub imbalance: f64,
    /// RNG seed for matching order and initial partitions.
    pub seed: u64,
    /// Random initial partitions tried on the coarsest level.
    pub initial_tries: u32,
    /// Maximum FM passes per level.
    pub max_fm_passes: u32,
}

impl PartitionConfig {
    /// Creates a configuration with hMetis-like defaults
    /// (ε = 0.10, 8 initial tries, 8 FM passes).
    pub fn new(parts: u32) -> Self {
        PartitionConfig {
            parts,
            imbalance: 0.10,
            seed: 0,
            initial_tries: 8,
            max_fm_passes: 8,
        }
    }

    /// Sets the imbalance tolerance.
    pub fn with_imbalance(mut self, imbalance: f64) -> Self {
        self.imbalance = imbalance;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A k-way partition of a hypergraph's vertices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    parts: u32,
    assignment: Vec<u32>,
}

impl Partition {
    /// Creates a partition from an explicit assignment.
    ///
    /// # Errors
    ///
    /// [`HypergraphError::ZeroParts`] when `parts == 0`; every assignment
    /// entry must be `< parts` or [`HypergraphError::PinOutOfRange`] is
    /// returned (reusing the pin error to avoid a new variant).
    pub fn from_assignment(parts: u32, assignment: Vec<u32>) -> Result<Self, HypergraphError> {
        if parts == 0 {
            return Err(HypergraphError::ZeroParts);
        }
        if let Some(&bad) = assignment.iter().find(|&&p| p >= parts) {
            return Err(HypergraphError::PinOutOfRange {
                vertex: bad,
                vertices: parts as usize,
            });
        }
        Ok(Partition { parts, assignment })
    }

    /// Number of parts `k`.
    pub fn parts(&self) -> u32 {
        self.parts
    }

    /// The part of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn part(&self, v: u32) -> u32 {
        self.assignment[v as usize]
    }

    /// The full assignment vector.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The vertices of part `p`.
    pub fn members(&self, p: u32) -> Vec<u32> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(v, &q)| (q == p).then_some(v as u32))
            .collect()
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, hg: &Hypergraph) -> Vec<u64> {
        let mut weights = vec![0u64; self.parts as usize];
        for (v, &p) in self.assignment.iter().enumerate() {
            weights[p as usize] += hg.vertex_weight(v as u32);
        }
        weights
    }

    /// `true` for hyperedges whose pins span more than one part.
    pub fn is_cut(&self, hg: &Hypergraph, edge: u32) -> bool {
        let pins = hg.pins(edge);
        match pins.split_first() {
            None => false,
            Some((&first, rest)) => {
                let p = self.assignment[first as usize];
                rest.iter().any(|&v| self.assignment[v as usize] != p)
            }
        }
    }

    /// Total weight of cut hyperedges — the objective the partitioner
    /// minimizes.
    pub fn cut_weight(&self, hg: &Hypergraph) -> u64 {
        (0..hg.num_edges() as u32)
            .filter(|&e| self.is_cut(hg, e))
            .map(|e| hg.edge_weight(e))
            .sum()
    }
}

impl Hypergraph {
    /// Partitions the hypergraph into `config.parts` parts, minimizing the
    /// weighted cut under the balance constraint.
    ///
    /// # Errors
    ///
    /// * [`HypergraphError::ZeroParts`] when `config.parts == 0`;
    /// * [`HypergraphError::PartsExceedVertices`] when more parts than
    ///   vertices are requested;
    /// * [`HypergraphError::InvalidImbalance`] for a negative or non-finite
    ///   tolerance.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use soctam_hypergraph::{HypergraphBuilder, PartitionConfig};
    ///
    /// let mut b = HypergraphBuilder::new();
    /// for _ in 0..4 {
    ///     b.add_vertex(1);
    /// }
    /// b.add_edge(1, &[0, 1])?;
    /// b.add_edge(1, &[2, 3])?;
    /// let hg = b.build();
    /// let p = hg.partition(&PartitionConfig::new(2))?;
    /// assert_eq!(p.cut_weight(&hg), 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn partition(&self, config: &PartitionConfig) -> Result<Partition, HypergraphError> {
        if config.parts == 0 {
            return Err(HypergraphError::ZeroParts);
        }
        if config.parts as usize > self.num_vertices() {
            return Err(HypergraphError::PartsExceedVertices {
                parts: config.parts,
                vertices: self.num_vertices(),
            });
        }
        if !config.imbalance.is_finite() || config.imbalance < 0.0 {
            return Err(HypergraphError::InvalidImbalance {
                imbalance: config.imbalance,
            });
        }
        let assignment = bisect::recursive_kway(self, config);
        Partition::from_assignment(config.parts, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HypergraphBuilder;

    fn two_cluster_graph() -> Hypergraph {
        let mut b = HypergraphBuilder::new();
        for _ in 0..6 {
            b.add_vertex(1);
        }
        b.add_edge(10, &[0, 1, 2]).expect("valid");
        b.add_edge(10, &[3, 4, 5]).expect("valid");
        b.add_edge(1, &[2, 3]).expect("valid");
        b.build()
    }

    #[test]
    fn cut_weight_counts_spanning_edges() {
        let hg = two_cluster_graph();
        let p = Partition::from_assignment(2, vec![0, 0, 0, 1, 1, 1]).expect("valid");
        assert_eq!(p.cut_weight(&hg), 1);
        let q = Partition::from_assignment(2, vec![0, 1, 0, 1, 0, 1]).expect("valid");
        assert_eq!(q.cut_weight(&hg), 21);
    }

    #[test]
    fn part_weights_sum_to_total() {
        let hg = two_cluster_graph();
        let p = Partition::from_assignment(3, vec![0, 0, 1, 1, 2, 2]).expect("valid");
        let weights = p.part_weights(&hg);
        assert_eq!(weights.iter().sum::<u64>(), hg.total_vertex_weight());
    }

    #[test]
    fn members_lists_each_part() {
        let p = Partition::from_assignment(2, vec![0, 1, 0]).expect("valid");
        assert_eq!(p.members(0), vec![0, 2]);
        assert_eq!(p.members(1), vec![1]);
    }

    #[test]
    fn invalid_assignment_rejected() {
        assert!(Partition::from_assignment(2, vec![0, 2]).is_err());
        assert!(Partition::from_assignment(0, vec![]).is_err());
    }

    #[test]
    fn config_validation() {
        let hg = two_cluster_graph();
        assert!(hg.partition(&PartitionConfig::new(0)).is_err());
        assert!(hg.partition(&PartitionConfig::new(7)).is_err());
        assert!(hg
            .partition(&PartitionConfig::new(2).with_imbalance(-0.1))
            .is_err());
    }
}
