//! Quality test: the multilevel FM partitioner versus brute-force optimal
//! bisection on small random hypergraphs. hMetis-class heuristics are not
//! optimal, but on instances of the size this workspace actually
//! partitions (≤ 33 cores) they should sit very close to the optimum.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam_exec::Rng;

use soctam_hypergraph::{Hypergraph, HypergraphBuilder, PartitionConfig};

fn random_hypergraph(vertices: u32, edges: u32, seed: u64) -> Hypergraph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::new();
    for _ in 0..vertices {
        builder.add_vertex(rng.range_u64_inclusive(1, 5));
    }
    for _ in 0..edges {
        let len = rng.range_usize_inclusive(2, 4);
        let mut pins: Vec<u32> = Vec::new();
        while pins.len() < len {
            let v = rng.range_u32(0, vertices);
            if !pins.contains(&v) {
                pins.push(v);
            }
        }
        builder
            .add_edge(rng.range_u64_inclusive(1, 10), &pins)
            .expect("pins valid");
    }
    builder.build()
}

/// Brute-force optimal balanced bisection cut (caps mirror the heuristic's
/// feasible region: (total/2)·1.1 + max vertex weight).
fn optimal_bisection_cut(hg: &Hypergraph) -> u64 {
    let n = hg.num_vertices();
    assert!(n <= 16, "brute force limited to 16 vertices");
    let total = hg.total_vertex_weight();
    let max_vertex = (0..n as u32)
        .map(|v| hg.vertex_weight(v))
        .max()
        .unwrap_or(0);
    let cap = ((total as f64 / 2.0) * 1.1).ceil() as u64 + max_vertex;
    let mut best = u64::MAX;
    for mask in 1u32..(1 << n) - 1 {
        let mut w0 = 0u64;
        for v in 0..n {
            if mask & (1 << v) != 0 {
                w0 += hg.vertex_weight(v as u32);
            }
        }
        let w1 = total - w0;
        if w0 > cap || w1 > cap {
            continue;
        }
        let mut cut = 0u64;
        for e in 0..hg.num_edges() as u32 {
            let pins = hg.pins(e);
            let first = mask & (1 << pins[0]) != 0;
            if pins.iter().any(|&v| (mask & (1 << v) != 0) != first) {
                cut += hg.edge_weight(e);
            }
        }
        best = best.min(cut);
    }
    best
}

#[test]
fn fm_bisection_is_near_optimal_on_small_instances() {
    let mut total_gap = 0u64;
    let mut total_opt = 0u64;
    for seed in 0..20u64 {
        let hg = random_hypergraph(12, 24, seed);
        let optimal = optimal_bisection_cut(&hg);
        let partition = hg
            .partition(&PartitionConfig::new(2).with_seed(seed))
            .expect("partitions");
        let heuristic = partition.cut_weight(&hg);
        assert!(
            heuristic >= optimal,
            "seed {seed}: heuristic {heuristic} beat 'optimal' {optimal} — brute force is wrong"
        );
        // Individually, allow the heuristic 40% headroom over optimal; the
        // aggregate bound below is much tighter.
        assert!(
            heuristic <= optimal + optimal.max(5) * 2 / 5 + 3,
            "seed {seed}: heuristic {heuristic} too far from optimal {optimal}"
        );
        total_gap += heuristic - optimal;
        total_opt += optimal;
    }
    // Across 20 instances the average excess cut must stay below 15%.
    assert!(
        total_gap * 100 <= total_opt.max(1) * 15,
        "aggregate gap {total_gap} over optimal total {total_opt}"
    );
}

#[test]
fn kway_matches_repeated_bisection_quality() {
    for seed in 0..5u64 {
        let hg = random_hypergraph(14, 30, seed + 100);
        let p2 = hg
            .partition(&PartitionConfig::new(2).with_seed(seed))
            .expect("partitions");
        let p4 = hg
            .partition(&PartitionConfig::new(4).with_seed(seed))
            .expect("partitions");
        // Refining a partition (more parts) can only cut more.
        assert!(p4.cut_weight(&hg) >= p2.cut_weight(&hg));
    }
}
