//! The sparse SI test pattern.

use std::fmt::Write as _;

use soctam_model::{BusLineId, CoreId, Soc, TerminalId};

use crate::{PatternError, Symbol};

/// One SI test pattern: a sparse assignment of care symbols to wrapper
/// output terminals, plus the bus postfix of Table 1.
///
/// Positions not present in the care map are `x` (don't-care). Each
/// occupied bus line records the *driver core* from whose boundary the line
/// is triggered; two patterns occupying the same line from different core
/// boundaries must not be compacted together (Section 3 of the paper).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::{SiPattern, Symbol};
///
/// let a = SiPattern::new(
///     vec![(TerminalId::new(0), Symbol::Rise), (TerminalId::new(3), Symbol::Zero)],
///     vec![],
/// )?;
/// let b = SiPattern::new(vec![(TerminalId::new(3), Symbol::Zero)], vec![])?;
/// assert!(a.is_compatible(&b));
/// assert_eq!(a.merged(&b)?.care_bits().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct SiPattern {
    /// Care bits, sorted by terminal, one entry per terminal.
    care: Vec<(TerminalId, Symbol)>,
    /// Occupied bus lines with their driver cores, sorted by line, one
    /// entry per line.
    bus: Vec<(BusLineId, CoreId)>,
}

impl SiPattern {
    /// Builds a pattern from care bits and occupied bus lines.
    ///
    /// The inputs need not be sorted; duplicates are removed. A terminal
    /// listed with two *different* symbols, or a bus line occupied for two
    /// *different* driver cores, is an error.
    ///
    /// # Errors
    ///
    /// [`PatternError::ConflictingCareBit`] or
    /// [`PatternError::ConflictingBusLine`] on internal contradictions.
    pub fn new(
        mut care: Vec<(TerminalId, Symbol)>,
        mut bus: Vec<(BusLineId, CoreId)>,
    ) -> Result<Self, PatternError> {
        care.sort_unstable();
        care.dedup();
        for pair in care.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(PatternError::ConflictingCareBit {
                    terminal: pair[0].0,
                });
            }
        }
        bus.sort_unstable();
        bus.dedup();
        for pair in bus.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(PatternError::ConflictingBusLine {
                    line: pair[0].0.raw(),
                });
            }
        }
        Ok(SiPattern { care, bus })
    }

    /// The care bits, sorted by terminal.
    pub fn care_bits(&self) -> &[(TerminalId, Symbol)] {
        &self.care
    }

    /// The occupied bus lines with their driver cores, sorted by line.
    pub fn bus_lines(&self) -> &[(BusLineId, CoreId)] {
        &self.bus
    }

    /// The care symbol at `terminal`, or `None` for `x`.
    pub fn symbol_at(&self, terminal: TerminalId) -> Option<Symbol> {
        self.care
            .binary_search_by_key(&terminal, |&(t, _)| t)
            .ok()
            .map(|i| self.care[i].1)
    }

    /// `true` when the pattern has no care bits and no occupied bus lines.
    pub fn is_empty(&self) -> bool {
        self.care.is_empty() && self.bus.is_empty()
    }

    /// The *care cores* of the pattern: owners of all care terminals plus
    /// all bus driver cores, sorted and deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if a care terminal lies outside `soc`'s terminal space (use
    /// [`SiPattern::validate_for`] first for untrusted patterns).
    // Invariant: out-of-range terminals are a documented `# Panics` contract of this method.
    #[allow(clippy::expect_used)]
    pub fn care_cores(&self, soc: &Soc) -> Vec<CoreId> {
        let mut cores: Vec<CoreId> = self
            .care
            .iter()
            .map(|&(t, _)| soc.owner(t).expect("care terminal in range"))
            .chain(self.bus.iter().map(|&(_, driver)| driver))
            .collect();
        cores.sort_unstable();
        cores.dedup();
        cores
    }

    /// Checks that every care terminal exists in `soc`.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::TerminalOutOfRange`] for the first offending
    /// care bit.
    pub fn validate_for(&self, soc: &Soc) -> Result<(), PatternError> {
        for &(terminal, _) in &self.care {
            if soc.owner(terminal).is_none() {
                return Err(PatternError::TerminalOutOfRange {
                    terminal,
                    total: soc.total_wocs(),
                });
            }
        }
        Ok(())
    }

    /// `true` when `self` and `other` can be compacted into one pattern:
    /// their care maps agree wherever both are non-`x`, and no bus line is
    /// occupied from two different core boundaries.
    pub fn is_compatible(&self, other: &SiPattern) -> bool {
        merge_join_agrees(&self.care, &other.care) && merge_join_agrees(&self.bus, &other.bus)
    }

    /// The intersection (compaction) of two compatible patterns: the union
    /// of their care bits and bus occupations.
    ///
    /// # Errors
    ///
    /// [`PatternError::ConflictingCareBit`] or
    /// [`PatternError::ConflictingBusLine`] when the patterns are not
    /// compatible.
    pub fn merged(&self, other: &SiPattern) -> Result<SiPattern, PatternError> {
        let care = merge_join_union(&self.care, &other.care)
            .map_err(|t| PatternError::ConflictingCareBit { terminal: t })?;
        let bus = merge_join_union(&self.bus, &other.bus)
            .map_err(|l| PatternError::ConflictingBusLine { line: l.raw() })?;
        Ok(SiPattern { care, bus })
    }

    /// Renders the pattern in the style of Table 1: one symbol per terminal
    /// with `|` separating core boundaries, then the bus postfix.
    ///
    /// Intended for debugging and examples; `O(total terminals)`.
    ///
    /// # Panics
    ///
    /// Panics if a care terminal lies outside `soc`'s terminal space.
    pub fn render(&self, soc: &Soc, bus_lines: u8) -> String {
        let mut out = String::new();
        for core in soc.core_ids() {
            if core.index() > 0 {
                out.push('|');
            }
            let range = soc.terminal_range(core);
            for t in range {
                match self.symbol_at(TerminalId::new(t)) {
                    Some(sym) => {
                        let _ = write!(out, "{sym}");
                    }
                    None => out.push('x'),
                }
            }
        }
        out.push_str(" ‖ ");
        for line in 0..bus_lines {
            let occupied = self
                .bus
                .binary_search_by_key(&BusLineId::new(line), |&(l, _)| l)
                .is_ok();
            out.push(if occupied { '1' } else { 'x' });
        }
        out
    }
}

/// `true` when two sorted association lists agree on every shared key.
fn merge_join_agrees<K: Ord + Copy, V: Eq + Copy>(a: &[(K, V)], b: &[(K, V)]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i].1 != b[j].1 {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
    }
    true
}

/// The union of two sorted association lists; `Err(key)` on disagreement.
fn merge_join_union<K: Ord + Copy, V: Eq + Copy>(
    a: &[(K, V)],
    b: &[(K, V)],
) -> Result<Vec<(K, V)>, K> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                if a[i].1 != b[j].1 {
                    return Err(a[i].0);
                }
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_model::CoreSpec;

    fn t(i: u32) -> TerminalId {
        TerminalId::new(i)
    }

    fn soc() -> Soc {
        Soc::new(
            "t",
            vec![
                CoreSpec::new("a", 1, 2, 0, vec![], 1).expect("valid"),
                CoreSpec::new("b", 1, 3, 0, vec![], 1).expect("valid"),
            ],
        )
        .expect("valid soc")
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let p = SiPattern::new(
            vec![
                (t(5), Symbol::One),
                (t(1), Symbol::Rise),
                (t(5), Symbol::One),
            ],
            vec![],
        )
        .expect("valid");
        assert_eq!(p.care_bits(), &[(t(1), Symbol::Rise), (t(5), Symbol::One)]);
    }

    #[test]
    fn conflicting_care_bit_rejected() {
        let err =
            SiPattern::new(vec![(t(2), Symbol::Rise), (t(2), Symbol::Fall)], vec![]).unwrap_err();
        assert!(matches!(err, PatternError::ConflictingCareBit { .. }));
    }

    #[test]
    fn conflicting_bus_driver_rejected() {
        let err = SiPattern::new(
            vec![],
            vec![
                (BusLineId::new(3), CoreId::new(0)),
                (BusLineId::new(3), CoreId::new(1)),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, PatternError::ConflictingBusLine { line: 3 }));
    }

    #[test]
    fn compatibility_requires_symbol_agreement() {
        let a = SiPattern::new(vec![(t(0), Symbol::Rise)], vec![]).expect("valid");
        let b = SiPattern::new(vec![(t(0), Symbol::Fall)], vec![]).expect("valid");
        let c = SiPattern::new(vec![(t(1), Symbol::Fall)], vec![]).expect("valid");
        assert!(!a.is_compatible(&b));
        assert!(a.is_compatible(&c));
    }

    #[test]
    fn same_bus_line_different_drivers_incompatible() {
        let a = SiPattern::new(vec![], vec![(BusLineId::new(0), CoreId::new(0))]).expect("valid");
        let b = SiPattern::new(vec![], vec![(BusLineId::new(0), CoreId::new(1))]).expect("valid");
        let c = SiPattern::new(vec![], vec![(BusLineId::new(0), CoreId::new(0))]).expect("valid");
        assert!(!a.is_compatible(&b));
        assert!(a.is_compatible(&c));
    }

    #[test]
    fn merge_unions_care_bits() {
        let a = SiPattern::new(vec![(t(0), Symbol::Rise)], vec![]).expect("valid");
        let b = SiPattern::new(vec![(t(2), Symbol::Zero)], vec![]).expect("valid");
        let m = a.merged(&b).expect("compatible");
        assert_eq!(m.care_bits().len(), 2);
        assert_eq!(m.symbol_at(t(0)), Some(Symbol::Rise));
        assert_eq!(m.symbol_at(t(2)), Some(Symbol::Zero));
        assert_eq!(m.symbol_at(t(1)), None);
    }

    #[test]
    fn merge_of_incompatible_fails() {
        let a = SiPattern::new(vec![(t(0), Symbol::Rise)], vec![]).expect("valid");
        let b = SiPattern::new(vec![(t(0), Symbol::Fall)], vec![]).expect("valid");
        assert!(a.merged(&b).is_err());
    }

    #[test]
    fn care_cores_include_bus_drivers() {
        let soc = soc();
        let p = SiPattern::new(
            vec![(t(0), Symbol::Rise)],
            vec![(BusLineId::new(7), CoreId::new(1))],
        )
        .expect("valid");
        assert_eq!(p.care_cores(&soc), vec![CoreId::new(0), CoreId::new(1)]);
    }

    #[test]
    fn validate_detects_out_of_range() {
        let soc = soc(); // 5 terminals
        let p = SiPattern::new(vec![(t(5), Symbol::One)], vec![]).expect("valid");
        assert!(matches!(
            p.validate_for(&soc),
            Err(PatternError::TerminalOutOfRange { .. })
        ));
    }

    #[test]
    fn render_matches_table1_layout() {
        let soc = soc();
        let p = SiPattern::new(
            vec![(t(0), Symbol::Rise), (t(3), Symbol::Zero)],
            vec![(BusLineId::new(1), CoreId::new(0))],
        )
        .expect("valid");
        assert_eq!(p.render(&soc, 4), "↑x|x0x ‖ x1xx");
    }

    #[test]
    fn empty_pattern_is_compatible_with_everything() {
        let e = SiPattern::default();
        assert!(e.is_empty());
        let p = SiPattern::new(vec![(t(0), Symbol::Rise)], vec![]).expect("valid");
        assert!(e.is_compatible(&p));
        assert_eq!(e.merged(&p).expect("compatible"), p);
    }
}
