//! The SI pattern symbol alphabet.

use std::fmt;

/// A *care* symbol of an SI test pattern (Table 1 of the paper).
///
/// `x` (don't-care) is represented by the *absence* of a terminal from a
/// pattern's sparse care map, so it has no variant here.
///
/// * [`Symbol::Zero`] / [`Symbol::One`] — the terminal holds `0`/`1` across
///   both cycles of the vector pair (quiescent victim for glitch tests);
/// * [`Symbol::Rise`] / [`Symbol::Fall`] — a positive/negative transition.
///
/// # Example
///
/// ```
/// use soctam_patterns::Symbol;
///
/// assert!(Symbol::Rise.is_transition());
/// assert!(!Symbol::Zero.is_transition());
/// assert_eq!(Symbol::Fall.to_string(), "↓");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Symbol {
    /// Steady `0` in consecutive cycles.
    Zero,
    /// Steady `1` in consecutive cycles.
    One,
    /// Positive transition (`↑`).
    Rise,
    /// Negative transition (`↓`).
    Fall,
}

impl Symbol {
    /// All four care symbols.
    pub const ALL: [Symbol; 4] = [Symbol::Zero, Symbol::One, Symbol::Rise, Symbol::Fall];

    /// The two transition symbols (aggressors always make transitions).
    pub const TRANSITIONS: [Symbol; 2] = [Symbol::Rise, Symbol::Fall];

    /// `true` for [`Symbol::Rise`] and [`Symbol::Fall`].
    pub fn is_transition(self) -> bool {
        matches!(self, Symbol::Rise | Symbol::Fall)
    }

    /// The symbol with the opposite transition direction or inverted level.
    ///
    /// # Example
    ///
    /// ```
    /// use soctam_patterns::Symbol;
    ///
    /// assert_eq!(Symbol::Rise.opposite(), Symbol::Fall);
    /// assert_eq!(Symbol::Zero.opposite(), Symbol::One);
    /// ```
    pub fn opposite(self) -> Symbol {
        match self {
            Symbol::Zero => Symbol::One,
            Symbol::One => Symbol::Zero,
            Symbol::Rise => Symbol::Fall,
            Symbol::Fall => Symbol::Rise,
        }
    }

    /// The `(first, second)` cycle logic values of the vector pair.
    ///
    /// # Example
    ///
    /// ```
    /// use soctam_patterns::Symbol;
    ///
    /// assert_eq!(Symbol::Rise.vector_pair(), (false, true));
    /// assert_eq!(Symbol::One.vector_pair(), (true, true));
    /// ```
    pub fn vector_pair(self) -> (bool, bool) {
        match self {
            Symbol::Zero => (false, false),
            Symbol::One => (true, true),
            Symbol::Rise => (false, true),
            Symbol::Fall => (true, false),
        }
    }

    /// The inverse of [`Symbol::vector_pair`]: the symbol whose vector
    /// pair is `(first, second)`. Total — every 2-bit code names a
    /// symbol, which is what makes the packed bit-plane encoding work.
    ///
    /// # Example
    ///
    /// ```
    /// use soctam_patterns::Symbol;
    ///
    /// assert_eq!(Symbol::from_vector_pair(false, true), Symbol::Rise);
    /// ```
    pub fn from_vector_pair(first: bool, second: bool) -> Symbol {
        match (first, second) {
            (false, false) => Symbol::Zero,
            (true, true) => Symbol::One,
            (false, true) => Symbol::Rise,
            (true, false) => Symbol::Fall,
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symbol::Zero => "0",
            Symbol::One => "1",
            Symbol::Rise => "↑",
            Symbol::Fall => "↓",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opposite_is_involutive() {
        for s in Symbol::ALL {
            assert_eq!(s.opposite().opposite(), s);
        }
    }

    #[test]
    fn vector_pair_encodes_transitions() {
        for s in Symbol::ALL {
            let (a, b) = s.vector_pair();
            assert_eq!(s.is_transition(), a != b);
        }
    }

    #[test]
    fn vector_pair_roundtrips() {
        for s in Symbol::ALL {
            let (a, b) = s.vector_pair();
            assert_eq!(Symbol::from_vector_pair(a, b), s);
        }
    }

    #[test]
    fn display_uses_table1_glyphs() {
        let rendered: Vec<String> = Symbol::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(rendered, ["0", "1", "↑", "↓"]);
    }
}
