//! The randomized SI pattern recipe of the paper's experiments (Section 5).

use soctam_exec::{Pool, Rng};

use soctam_model::{BusLineId, Soc, TerminalId};

use crate::{PatternError, SiPattern, Symbol};

/// Configuration for [`generate_random`] /
/// [`SiPatternSet::random`](crate::SiPatternSet::random).
///
/// Defaults reproduce the paper's setup: `N_a ∈ [2, 6]` aggressors per
/// pattern, at most two aggressors outside the victim core boundary, a
/// 32-bit shared bus used by 50 % of the patterns with `1..=N_a` occupied
/// postfix bits. Internal aggressors are drawn from a ±4-terminal locality
/// window around the victim (crosstalk couples neighbouring interconnects;
/// the paper's reduced-MT discussion uses `k = 3`).
///
/// # Example
///
/// ```
/// use soctam_patterns::RandomPatternConfig;
///
/// let config = RandomPatternConfig::new(10_000).with_seed(42);
/// assert_eq!(config.count, 10_000);
/// assert_eq!(config.bus_lines, 32);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct RandomPatternConfig {
    /// Number of patterns to generate (the paper's `N_r`).
    pub count: usize,
    /// RNG seed; equal seeds over equal SOCs produce equal sets.
    pub seed: u64,
    /// Minimum aggressors per pattern (inclusive).
    pub min_aggressors: u32,
    /// Maximum aggressors per pattern (inclusive).
    pub max_aggressors: u32,
    /// At most this many aggressors outside the victim core boundary.
    pub max_external_aggressors: u32,
    /// Locality window for aggressors inside the victim core: internal
    /// aggressors are drawn from the terminals within this distance of the
    /// victim (crosstalk couples neighbouring lines; compare the reduced-MT
    /// locality factor `k`). `None` draws them uniformly from the whole
    /// core boundary.
    pub locality: Option<u32>,
    /// Width of the shared functional bus (0 disables the bus postfix).
    pub bus_lines: u8,
    /// Probability that a pattern occupies bus lines.
    pub bus_probability: f64,
}

impl RandomPatternConfig {
    /// Creates the paper's default configuration for `count` patterns.
    pub fn new(count: usize) -> Self {
        RandomPatternConfig {
            count,
            seed: 0,
            min_aggressors: 2,
            max_aggressors: 6,
            max_external_aggressors: 2,
            locality: Some(4),
            bus_lines: 32,
            bus_probability: 0.5,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn validate(&self, soc: &Soc) -> Result<(), PatternError> {
        if self.min_aggressors == 0 || self.min_aggressors > self.max_aggressors {
            return Err(PatternError::InvalidConfig {
                message: format!(
                    "aggressor range {}..={} is empty or starts at zero",
                    self.min_aggressors, self.max_aggressors
                ),
            });
        }
        if !(0.0..=1.0).contains(&self.bus_probability) {
            return Err(PatternError::InvalidConfig {
                message: format!("bus probability {} outside [0, 1]", self.bus_probability),
            });
        }
        // Need a victim plus at least min_aggressors distinct terminals.
        let required = 1 + self.min_aggressors;
        if soc.total_wocs() < required {
            return Err(PatternError::NotEnoughTerminals {
                required,
                available: soc.total_wocs(),
            });
        }
        Ok(())
    }
}

/// Generates `config.count` random SI patterns over `soc`'s terminal space.
///
/// Each pattern has one victim terminal (any of the four symbols) and
/// `N_a` aggressor terminals (transitions), with at most
/// `config.max_external_aggressors` aggressors outside the victim core
/// boundary — if the victim core has too few terminals, the pattern may
/// end up with fewer aggressors than drawn, but the external bound is
/// never exceeded. With probability `config.bus_probability` the pattern
/// additionally occupies `1..=N_a` random bus lines, driven from the
/// victim core's boundary.
///
/// # Errors
///
/// Returns [`PatternError::InvalidConfig`] for inconsistent configurations
/// and [`PatternError::NotEnoughTerminals`] when the SOC's terminal space
/// cannot host a victim plus the minimum aggressors.
pub fn generate_random(
    soc: &Soc,
    config: &RandomPatternConfig,
) -> Result<Vec<SiPattern>, PatternError> {
    soctam_exec::fault::check("patterns.generate.random")?;
    config.validate(soc)?;
    Ok((0..config.count)
        .map(|i| generate_one(soc, config, i as u64))
        .collect())
}

/// As [`generate_random`], generating patterns in parallel on `pool`.
///
/// Pattern `i` is produced from its own PRNG stream derived from
/// `(config.seed, i)`, so the output is **bit-identical** to the serial
/// [`generate_random`] for any pool size.
///
/// # Errors
///
/// Same as [`generate_random`].
pub fn generate_random_with(
    soc: &Soc,
    config: &RandomPatternConfig,
    pool: &Pool,
) -> Result<Vec<SiPattern>, PatternError> {
    soctam_exec::fault::check("patterns.generate.random")?;
    config.validate(soc)?;
    Ok(pool.par_map_index(config.count, |i| generate_one(soc, config, i as u64)))
}

/// Generates pattern `index` of the set: one victim plus aggressors and
/// an optional bus postfix, all drawn from the stream derived from
/// `(config.seed, index)`.
// Invariant: draws are range-clipped and deduplicated before construction, so lookups and `SiPattern::new` cannot fail.
#[allow(clippy::expect_used)]
fn generate_one(soc: &Soc, config: &RandomPatternConfig, index: u64) -> SiPattern {
    let mut rng = Rng::derive(config.seed, index);
    let total = soc.total_wocs();

    let victim = TerminalId::new(rng.range_u32(0, total));
    let victim_core = soc.owner(victim).expect("victim in range");
    let victim_range = soc.terminal_range(victim_core);
    // Internal aggressors come from the locality window around the
    // victim, clipped to the victim core's boundary.
    let window = match config.locality {
        Some(k) => {
            victim.raw().saturating_sub(k).max(victim_range.start)
                ..(victim.raw() + k + 1).min(victim_range.end)
        }
        None => victim_range.clone(),
    };
    let internal_pool = (window.end - window.start - 1) as usize;
    let external_pool = (total - (victim_range.end - victim_range.start)) as usize;

    let na = rng.range_u32_inclusive(config.min_aggressors, config.max_aggressors) as usize;
    let max_ext = (config.max_external_aggressors as usize).min(external_pool);
    // Draw the external share, then force enough externals to cover
    // whatever the victim core cannot host internally.
    let drawn_ext = rng.range_usize_inclusive(0, max_ext.min(na));
    let needed_ext = na.saturating_sub(internal_pool).min(max_ext);
    let n_ext = drawn_ext.max(needed_ext);
    let n_int = (na - n_ext).min(internal_pool);

    let mut care = Vec::with_capacity(1 + n_int + n_ext);
    care.push((victim, Symbol::ALL[rng.index(4)]));

    sample_distinct(&mut rng, n_int, |r| {
        let t = r.range_u32(window.start, window.end);
        (t != victim.raw()).then_some(t)
    })
    .into_iter()
    .for_each(|t| care.push((TerminalId::new(t), Symbol::TRANSITIONS[rng.index(2)])));

    sample_distinct(&mut rng, n_ext, |r| {
        let t = r.range_u32(0, total);
        (!(victim_range.start..victim_range.end).contains(&t)).then_some(t)
    })
    .into_iter()
    .for_each(|t| care.push((TerminalId::new(t), Symbol::TRANSITIONS[rng.index(2)])));

    let bus = if config.bus_lines > 0 && rng.chance(config.bus_probability) {
        let occupied = rng
            .range_usize_inclusive(1, na.max(1))
            .min(config.bus_lines as usize);
        sample_distinct(&mut rng, occupied, |r| {
            Some(r.range_u32(0, u32::from(config.bus_lines)))
        })
        .into_iter()
        .map(|line| (BusLineId::new(line as u8), victim_core))
        .collect()
    } else {
        Vec::new()
    };

    // Duplicate draws were filtered, so construction cannot conflict.
    SiPattern::new(care, bus).expect("draws are distinct")
}

/// Draws `count` distinct values via rejection sampling. `draw` may return
/// `None` to veto a candidate (used to exclude the victim / core range).
fn sample_distinct(
    rng: &mut Rng,
    count: usize,
    mut draw: impl FnMut(&mut Rng) -> Option<u32>,
) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(count);
    let mut attempts = 0usize;
    while out.len() < count {
        attempts += 1;
        // The pools are always large relative to the <=6 samples needed, so
        // rejection converges fast; the cap guards against misuse.
        assert!(
            attempts < 10_000,
            "rejection sampling failed to find {count} distinct values"
        );
        if let Some(v) = draw(rng) {
            if !out.contains(&v) {
                out.push(v);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_model::{Benchmark, CoreSpec};

    fn soc() -> Soc {
        Benchmark::D695.soc()
    }

    #[test]
    fn generates_requested_count() {
        let set = generate_random(&soc(), &RandomPatternConfig::new(500)).expect("valid");
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomPatternConfig::new(200).with_seed(11);
        let a = generate_random(&soc(), &cfg).expect("valid");
        let b = generate_random(&soc(), &cfg).expect("valid");
        assert_eq!(a, b);
        let c =
            generate_random(&soc(), &RandomPatternConfig::new(200).with_seed(12)).expect("valid");
        assert_ne!(a, c);
    }

    #[test]
    fn external_aggressor_bound_holds() {
        let soc = soc();
        let cfg = RandomPatternConfig::new(2_000).with_seed(3);
        for p in generate_random(&soc, &cfg).expect("valid") {
            // The victim is the first care bit pushed, but care bits are
            // sorted afterwards; recover the victim as... any core: count
            // care cores other than the most frequent one.
            let mut per_core = std::collections::HashMap::new();
            for &(t, _) in p.care_bits() {
                *per_core
                    .entry(soc.owner(t).expect("in range"))
                    .or_insert(0u32) += 1;
            }
            let max_in_one_core = per_core.values().copied().max().unwrap_or(0);
            let total: u32 = per_core.values().sum();
            assert!(
                total - max_in_one_core <= cfg.max_external_aggressors,
                "more than {} aggressors outside the dominant core",
                cfg.max_external_aggressors
            );
        }
    }

    #[test]
    fn aggressor_count_in_range() {
        let cfg = RandomPatternConfig::new(1_000).with_seed(5);
        for p in generate_random(&soc(), &cfg).expect("valid") {
            let n = p.care_bits().len() - 1;
            assert!(n <= cfg.max_aggressors as usize);
            assert!(n >= 1, "at least one aggressor survives clamping");
        }
    }

    #[test]
    fn bus_usage_frequency_near_half() {
        let cfg = RandomPatternConfig::new(4_000).with_seed(9);
        let patterns = generate_random(&soc(), &cfg).expect("valid");
        let with_bus = patterns
            .iter()
            .filter(|p| !p.bus_lines().is_empty())
            .count();
        let frac = with_bus as f64 / patterns.len() as f64;
        assert!((0.45..0.55).contains(&frac), "bus fraction {frac}");
    }

    #[test]
    fn bus_lines_respect_width_and_driver() {
        let soc = soc();
        let cfg = RandomPatternConfig {
            bus_lines: 4,
            ..RandomPatternConfig::new(1_000).with_seed(1)
        };
        for p in generate_random(&soc, &cfg).expect("valid") {
            for &(line, driver) in p.bus_lines() {
                assert!(line.raw() < 4);
                assert!(driver.index() < soc.num_cores());
            }
        }
    }

    #[test]
    fn internal_aggressors_respect_locality_window() {
        let soc = soc();
        let cfg = RandomPatternConfig {
            locality: Some(3),
            max_external_aggressors: 0,
            ..RandomPatternConfig::new(1_000).with_seed(13)
        };
        for p in generate_random(&soc, &cfg).expect("valid") {
            let terms: Vec<u32> = p.care_bits().iter().map(|&(t, _)| t.raw()).collect();
            let spread = terms.iter().max().unwrap() - terms.iter().min().unwrap();
            assert!(spread <= 6, "care bits span {spread} > 2 * locality");
        }
    }

    #[test]
    fn no_locality_spreads_over_whole_core() {
        let soc = soc();
        let cfg = RandomPatternConfig {
            locality: None,
            max_external_aggressors: 0,
            ..RandomPatternConfig::new(2_000).with_seed(13)
        };
        let wide = generate_random(&soc, &cfg)
            .expect("valid")
            .iter()
            .filter(|p| {
                let terms: Vec<u32> = p.care_bits().iter().map(|&(t, _)| t.raw()).collect();
                terms.iter().max().unwrap() - terms.iter().min().unwrap() > 8
            })
            .count();
        assert!(wide > 0, "uniform draws should sometimes span widely");
    }

    #[test]
    fn zero_bus_probability_disables_postfix() {
        let cfg = RandomPatternConfig {
            bus_probability: 0.0,
            ..RandomPatternConfig::new(300)
        };
        for p in generate_random(&soc(), &cfg).expect("valid") {
            assert!(p.bus_lines().is_empty());
        }
    }

    #[test]
    fn tiny_soc_rejected() {
        let tiny = Soc::new(
            "tiny",
            vec![CoreSpec::new("a", 1, 1, 0, vec![], 1).expect("valid")],
        )
        .expect("valid soc");
        assert!(matches!(
            generate_random(&tiny, &RandomPatternConfig::new(1)),
            Err(PatternError::NotEnoughTerminals { .. })
        ));
    }

    #[test]
    fn invalid_aggressor_range_rejected() {
        let cfg = RandomPatternConfig {
            min_aggressors: 5,
            max_aggressors: 2,
            ..RandomPatternConfig::new(1)
        };
        assert!(matches!(
            generate_random(&soc(), &cfg),
            Err(PatternError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn parallel_generation_matches_serial() {
        let soc = soc();
        let cfg = RandomPatternConfig::new(777).with_seed(21);
        let serial = generate_random(&soc, &cfg).expect("valid");
        for jobs in [1, 2, 4, 8] {
            let pool = Pool::new(jobs);
            let parallel = generate_random_with(&soc, &cfg, &pool).expect("valid");
            assert_eq!(parallel, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn works_on_all_benchmarks() {
        for bench in Benchmark::ALL {
            let soc = bench.soc();
            let set =
                generate_random(&soc, &RandomPatternConfig::new(100).with_seed(2)).expect("valid");
            for p in &set {
                p.validate_for(&soc).expect("terminals in range");
            }
        }
    }
}
