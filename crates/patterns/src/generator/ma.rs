//! The maximal-aggressor (MA) fault model of Cuviello et al. (ICCAD 1999).

use soctam_model::TerminalId;

use crate::{PatternError, SiPattern, Symbol};

/// Generates the MA test set for one interconnect bundle: **6 vector pairs
/// per victim**, `6·N` patterns in total.
///
/// In the MA model all aggressors make the same simultaneous transition
/// while the victim is either quiescent (`0`/`1`, glitch faults) or makes
/// the opposite transition (delay/speedup faults):
///
/// | # | victim | aggressors |
/// |---|--------|------------|
/// | 1 | `0`    | all `↑`    |
/// | 2 | `0`    | all `↓`    |
/// | 3 | `1`    | all `↑`    |
/// | 4 | `1`    | all `↓`    |
/// | 5 | `↑`    | all `↓`    |
/// | 6 | `↓`    | all `↑`    |
///
/// # Errors
///
/// Returns [`PatternError::NotEnoughTerminals`] when the bundle has fewer
/// than two lines and [`PatternError::InvalidConfig`] when it contains a
/// duplicate terminal.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::generator::maximal_aggressor;
///
/// let bundle: Vec<TerminalId> = (0..32).map(TerminalId::new).collect();
/// let patterns = maximal_aggressor(&bundle)?;
/// assert_eq!(patterns.len(), 6 * 32);
/// # Ok(())
/// # }
/// ```
pub fn maximal_aggressor(bundle: &[TerminalId]) -> Result<Vec<SiPattern>, PatternError> {
    check_bundle(bundle)?;
    let cases: [(Symbol, Symbol); 6] = [
        (Symbol::Zero, Symbol::Rise),
        (Symbol::Zero, Symbol::Fall),
        (Symbol::One, Symbol::Rise),
        (Symbol::One, Symbol::Fall),
        (Symbol::Rise, Symbol::Fall),
        (Symbol::Fall, Symbol::Rise),
    ];
    let mut patterns = Vec::with_capacity(6 * bundle.len());
    for &victim in bundle {
        for (victim_sym, aggressor_sym) in cases {
            let mut care = Vec::with_capacity(bundle.len());
            care.push((victim, victim_sym));
            for &line in bundle {
                if line != victim {
                    care.push((line, aggressor_sym));
                }
            }
            patterns.push(SiPattern::new(care, Vec::new())?);
        }
    }
    Ok(patterns)
}

pub(crate) fn check_bundle(bundle: &[TerminalId]) -> Result<(), PatternError> {
    if bundle.len() < 2 {
        return Err(PatternError::NotEnoughTerminals {
            required: 2,
            available: bundle.len() as u32,
        });
    }
    let mut sorted: Vec<TerminalId> = bundle.to_vec();
    sorted.sort_unstable();
    if sorted.windows(2).any(|w| w[0] == w[1]) {
        return Err(PatternError::InvalidConfig {
            message: "bundle contains a duplicate terminal".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(n: u32) -> Vec<TerminalId> {
        (0..n).map(TerminalId::new).collect()
    }

    #[test]
    fn count_is_6n() {
        for n in [2u32, 5, 32] {
            assert_eq!(
                maximal_aggressor(&bundle(n)).expect("valid").len(),
                6 * n as usize
            );
        }
    }

    #[test]
    fn every_pattern_is_fully_specified_on_the_bundle() {
        let b = bundle(8);
        for p in maximal_aggressor(&b).expect("valid") {
            assert_eq!(p.care_bits().len(), 8);
        }
    }

    #[test]
    fn aggressors_all_transition_the_same_way() {
        let b = bundle(4);
        for p in maximal_aggressor(&b).expect("valid") {
            let transitions: Vec<Symbol> = p
                .care_bits()
                .iter()
                .map(|&(_, s)| s)
                .filter(|s| s.is_transition())
                .collect();
            // Either all aggressors transition one way (victim quiescent),
            // or the victim transitions opposite to all aggressors.
            let rises = transitions.iter().filter(|&&s| s == Symbol::Rise).count();
            let falls = transitions.len() - rises;
            assert!(rises == 0 || falls == 0 || rises == 1 || falls == 1);
        }
    }

    #[test]
    fn motivation_example_from_section2() {
        // 640 victim interconnects => 3840 MA vector pairs.
        let b = bundle(640);
        assert_eq!(maximal_aggressor(&b).expect("valid").len(), 3840);
    }

    #[test]
    fn tiny_bundle_rejected() {
        assert!(maximal_aggressor(&bundle(1)).is_err());
    }

    #[test]
    fn duplicate_terminal_rejected() {
        let b = vec![TerminalId::new(1), TerminalId::new(1), TerminalId::new(2)];
        assert!(matches!(
            maximal_aggressor(&b),
            Err(PatternError::InvalidConfig { .. })
        ));
    }
}
