//! SI pattern generators: the MA and reduced-MT fault models and the
//! paper's randomized experimental recipe.

mod ma;
mod mt;
mod random;
mod shorts_opens;

pub use ma::maximal_aggressor;
pub use mt::{reduced_mt, reduced_mt_estimate, MAX_LOCALITY};
pub use random::{generate_random, generate_random_with, RandomPatternConfig};
pub use shorts_opens::shorts_opens;
