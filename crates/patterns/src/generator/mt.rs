//! The reduced multiple-transition (MT) fault model of Tehranipour et al.
//! (IEEE TCAD 2004) with an empirical locality factor `k`.

use soctam_model::TerminalId;

use crate::{PatternError, SiPattern, Symbol};

/// Largest accepted locality factor; `k = 8` already yields 2¹⁸ patterns
/// per victim.
pub const MAX_LOCALITY: u32 = 8;

/// Generates the reduced-MT test set for one interconnect bundle with
/// locality factor `k`.
///
/// The bundle is ordered by physical adjacency: the aggressors of victim
/// `i` are the lines within distance `k` on either side. Every pattern
/// assigns one of the four symbols to the victim and an independent
/// transition (`↑`/`↓`) to each aggressor, so an interior victim yields
/// `4 · 2^(2k) = 2^(2k+2)` patterns; victims near the bundle edge have
/// fewer neighbours and proportionally fewer patterns.
///
/// # Errors
///
/// * [`PatternError::NotEnoughTerminals`] when the bundle has fewer than
///   two lines;
/// * [`PatternError::InvalidConfig`] when `k == 0`, `k > MAX_LOCALITY`, or
///   the bundle contains a duplicate terminal.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::generator::reduced_mt;
///
/// let bundle: Vec<TerminalId> = (0..10).map(TerminalId::new).collect();
/// let patterns = reduced_mt(&bundle, 1)?;
/// // Interior victims have 2 neighbours: 4 * 2^2 = 16 patterns each;
/// // the two edge victims have 1 neighbour: 8 patterns each.
/// assert_eq!(patterns.len(), 8 * 16 + 2 * 8);
/// # Ok(())
/// # }
/// ```
pub fn reduced_mt(bundle: &[TerminalId], k: u32) -> Result<Vec<SiPattern>, PatternError> {
    super::ma::check_bundle(bundle)?;
    if k == 0 || k > MAX_LOCALITY {
        return Err(PatternError::InvalidConfig {
            message: format!("locality factor k={k} outside 1..={MAX_LOCALITY}"),
        });
    }
    let mut patterns = Vec::new();
    for (i, &victim) in bundle.iter().enumerate() {
        let lo = i.saturating_sub(k as usize);
        let hi = (i + k as usize).min(bundle.len() - 1);
        let neighbours: Vec<TerminalId> =
            (lo..=hi).filter(|&j| j != i).map(|j| bundle[j]).collect();
        for victim_sym in Symbol::ALL {
            for mask in 0u32..(1 << neighbours.len()) {
                let mut care = Vec::with_capacity(neighbours.len() + 1);
                care.push((victim, victim_sym));
                for (bit, &agg) in neighbours.iter().enumerate() {
                    let sym = if mask & (1 << bit) != 0 {
                        Symbol::Rise
                    } else {
                        Symbol::Fall
                    };
                    care.push((agg, sym));
                }
                patterns.push(SiPattern::new(care, Vec::new())?);
            }
        }
    }
    Ok(patterns)
}

/// The paper's closed-form estimate of the reduced-MT pattern count for
/// `n` victims with locality `k` (edge effects ignored): `n · 2^(2k+2)`.
///
/// # Example
///
/// ```
/// use soctam_patterns::generator::reduced_mt_estimate;
///
/// // The Section 2 motivation: 640 victims, k = 3 => ~163 840 pairs.
/// assert_eq!(reduced_mt_estimate(640, 3), 163_840);
/// ```
pub fn reduced_mt_estimate(victims: u64, k: u32) -> u64 {
    victims << (2 * k + 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(n: u32) -> Vec<TerminalId> {
        (0..n).map(TerminalId::new).collect()
    }

    #[test]
    fn interior_victims_have_full_count() {
        let b = bundle(20);
        let patterns = reduced_mt(&b, 2).expect("valid");
        // Victim 10 is interior: 4 neighbours => 4 * 16 = 64 patterns.
        let victim10 = TerminalId::new(10);
        let count = patterns
            .iter()
            .filter(|p| {
                // Victim is the line that may be non-transition, but all
                // care sets for victim i contain terminal i; count patterns
                // whose *lowest-distance structure* centres on 10: the care
                // set spans exactly 8..=12.
                let bits = p.care_bits();
                bits.len() == 5
                    && bits.first().map(|&(t, _)| t) == Some(TerminalId::new(8))
                    && bits.last().map(|&(t, _)| t) == Some(TerminalId::new(12))
                    && p.symbol_at(victim10).is_some()
            })
            .count();
        assert_eq!(count, 64);
    }

    #[test]
    fn total_count_matches_edge_adjusted_formula() {
        let n = 10usize;
        let k = 1usize;
        let patterns = reduced_mt(&bundle(n as u32), k as u32).expect("valid");
        let expected: usize = (0..n)
            .map(|i| {
                let neighbours = (i.min(k)) + (n - 1 - i).min(k);
                4usize << neighbours
            })
            .sum();
        assert_eq!(patterns.len(), expected);
    }

    #[test]
    fn estimate_matches_paper_motivation() {
        assert_eq!(reduced_mt_estimate(640, 3), 163_840);
    }

    #[test]
    fn k_zero_rejected() {
        assert!(reduced_mt(&bundle(4), 0).is_err());
    }

    #[test]
    fn oversized_k_rejected() {
        assert!(reduced_mt(&bundle(4), MAX_LOCALITY + 1).is_err());
    }

    #[test]
    fn aggressors_are_transitions_only() {
        for p in reduced_mt(&bundle(6), 2).expect("valid") {
            let non_transitions = p
                .care_bits()
                .iter()
                .filter(|&&(_, s)| !s.is_transition())
                .count();
            assert!(non_transitions <= 1, "only the victim may be quiescent");
        }
    }
}
