//! Classic interconnect shorts/opens test: the modified counting sequence.
//!
//! This is the test the paper's premise is about: detecting *static*
//! shorts and opens on `N` interconnects needs only
//! `ceil(log2(N + 2))` parallel vectors (each wire carries its index in
//! binary, shifted by one so no wire sees all-0s or all-1s), which is why
//! prior TAM work could ignore ExTest time entirely. Generating it here
//! lets the benchmarks *show* that premise: shorts/opens ExTest is orders
//! of magnitude cheaper than SI ExTest.

use soctam_model::TerminalId;

use crate::{PatternError, SiPattern, Symbol};

/// Generates the modified counting-sequence test for one bundle:
/// `ceil(log2(N + 2))` static vectors. Wire `i` carries the bits of
/// `i + 1`, so every wire sees both a `0` and a `1` somewhere in the
/// sequence (open detection) and no two wires carry identical sequences
/// (short detection).
///
/// The vectors are *static* (symbols `0`/`1` only) — there are no
/// transitions to compact against SI patterns, but the type is shared so
/// the same timing machinery applies.
///
/// # Errors
///
/// Same bundle validation as
/// [`maximal_aggressor`](crate::generator::maximal_aggressor).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::generator::shorts_opens;
///
/// let bundle: Vec<TerminalId> = (0..640).map(TerminalId::new).collect();
/// let vectors = shorts_opens(&bundle)?;
/// // ceil(log2(642)) = 10 vectors for the paper's 640-interconnect bus —
/// // versus 3 840 MA vector pairs.
/// assert_eq!(vectors.len(), 10);
/// # Ok(())
/// # }
/// ```
pub fn shorts_opens(bundle: &[TerminalId]) -> Result<Vec<SiPattern>, PatternError> {
    super::ma::check_bundle(bundle)?;
    let n = bundle.len() as u64;
    let bits = 64 - (n + 1).leading_zeros() as usize; // ceil(log2(n + 2))
    let mut vectors = Vec::with_capacity(bits);
    for bit in 0..bits {
        let care = bundle
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let code = i as u64 + 1;
                let symbol = if code & (1 << bit) != 0 {
                    Symbol::One
                } else {
                    Symbol::Zero
                };
                (t, symbol)
            })
            .collect();
        vectors.push(SiPattern::new(care, Vec::new())?);
    }
    Ok(vectors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle(n: u32) -> Vec<TerminalId> {
        (0..n).map(TerminalId::new).collect()
    }

    /// The per-wire sequence across the vectors.
    fn signature(vectors: &[SiPattern], t: TerminalId) -> Vec<Symbol> {
        vectors
            .iter()
            .map(|v| v.symbol_at(t).expect("fully specified"))
            .collect()
    }

    #[test]
    fn count_is_log2() {
        assert_eq!(shorts_opens(&bundle(2)).expect("valid").len(), 2);
        assert_eq!(shorts_opens(&bundle(6)).expect("valid").len(), 3);
        assert_eq!(shorts_opens(&bundle(640)).expect("valid").len(), 10);
    }

    #[test]
    fn signatures_are_pairwise_distinct() {
        let b = bundle(30);
        let vectors = shorts_opens(&b).expect("valid");
        let sigs: Vec<Vec<Symbol>> = b.iter().map(|&t| signature(&vectors, t)).collect();
        for i in 0..sigs.len() {
            for j in i + 1..sigs.len() {
                assert_ne!(sigs[i], sigs[j], "wires {i} and {j} are indistinguishable");
            }
        }
    }

    #[test]
    fn every_wire_sees_both_levels() {
        let b = bundle(17);
        let vectors = shorts_opens(&b).expect("valid");
        for &t in &b {
            let sig = signature(&vectors, t);
            assert!(sig.contains(&Symbol::Zero), "{t} never low");
            assert!(sig.contains(&Symbol::One), "{t} never high");
        }
    }

    #[test]
    fn vectors_are_static() {
        for v in shorts_opens(&bundle(12)).expect("valid") {
            assert!(v.care_bits().iter().all(|&(_, s)| !s.is_transition()));
        }
    }

    #[test]
    fn orders_of_magnitude_below_ma() {
        // The paper's premise: for the 640-interconnect example, shorts/
        // opens needs 10 vectors where MA needs 3 840 vector pairs.
        let b = bundle(640);
        let so = shorts_opens(&b).expect("valid").len();
        let ma = crate::generator::maximal_aggressor(&b)
            .expect("valid")
            .len();
        assert!(ma >= 300 * so, "ma {ma} vs shorts/opens {so}");
    }
}
