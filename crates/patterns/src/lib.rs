//! Signal-integrity (SI) test patterns for core-external interconnects.
//!
//! An SI test pattern (Table 1 of the DAC'07 paper) is a vector over the
//! SOC's global wrapper-output-cell terminal space using the five-symbol
//! alphabet `{x, 0, 1, ↑, ↓}`, plus a *bus postfix* marking which lines of
//! the shared functional bus the pattern occupies. Since a victim line is
//! only affected by a handful of neighbouring aggressors, patterns are
//! overwhelmingly `x` — this crate therefore stores patterns **sparsely**
//! (care bits only), which is what makes compacting 100 000-pattern sets
//! practical.
//!
//! Three generators are provided:
//!
//! * [`generator::maximal_aggressor`] — the MA fault model of Cuviello et
//!   al. (6 vector pairs per victim);
//! * [`generator::reduced_mt`] — the reduced multiple-transition model of
//!   Tehranipour et al. with locality factor `k` (`2^(2k+2)` patterns per
//!   victim);
//! * [`SiPatternSet::random`] — the randomized recipe the paper's
//!   experiments use (1 victim, 2–6 aggressors, ≤2 aggressors outside the
//!   victim core, 50 % bus usage).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soctam_model::Benchmark;
//! use soctam_patterns::{RandomPatternConfig, SiPatternSet};
//!
//! let soc = Benchmark::D695.soc();
//! let set = SiPatternSet::random(&soc, &RandomPatternConfig::new(1000).with_seed(7))?;
//! assert_eq!(set.len(), 1000);
//! // Every pattern has one victim and at least two aggressors.
//! assert!(set.iter().all(|p| p.care_bits().len() >= 3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod coverage;
mod error;
pub mod generator;
pub mod packed;
mod pattern;
mod set;
mod stats;
mod symbol;

pub use error::PatternError;
pub use generator::RandomPatternConfig;
pub use packed::{
    first_fit_cover, KernelStats, PackedAccumulator, PackedLayout, PackedPattern, PackedRef,
    PackedSet,
};
pub use pattern::SiPattern;
pub use set::SiPatternSet;
pub use stats::PatternSetStats;
pub use symbol::Symbol;
