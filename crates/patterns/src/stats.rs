//! Summary statistics of SI pattern sets.

use std::collections::BTreeSet;

use soctam_model::Soc;

use crate::SiPatternSet;

/// Aggregate statistics of an [`SiPatternSet`] over one SOC.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::Benchmark;
/// use soctam_patterns::{RandomPatternConfig, SiPatternSet};
///
/// let soc = Benchmark::D695.soc();
/// let set = SiPatternSet::random(&soc, &RandomPatternConfig::new(1000))?;
/// let stats = set.stats(&soc);
/// assert_eq!(stats.pattern_count, 1000);
/// assert!(stats.mean_care_bits() >= 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatternSetStats {
    /// Number of patterns.
    pub pattern_count: usize,
    /// Total care bits across all patterns.
    pub total_care_bits: u64,
    /// Patterns that occupy at least one bus line.
    pub bus_using_patterns: usize,
    /// Number of distinct care-core sets (the hyperedge count of the
    /// horizontal-compaction hypergraph).
    pub distinct_care_core_sets: usize,
    /// Per-core count of patterns whose care set touches the core.
    pub patterns_touching_core: Vec<u64>,
}

impl PatternSetStats {
    /// Computes statistics for `set` over `soc`.
    ///
    /// # Panics
    ///
    /// Panics if a pattern references a terminal outside `soc`.
    pub fn compute(set: &SiPatternSet, soc: &Soc) -> Self {
        let mut stats = PatternSetStats {
            pattern_count: set.len(),
            patterns_touching_core: vec![0; soc.num_cores()],
            ..PatternSetStats::default()
        };
        let mut core_sets: BTreeSet<Vec<u32>> = BTreeSet::new();
        for pattern in set {
            stats.total_care_bits += pattern.care_bits().len() as u64;
            if !pattern.bus_lines().is_empty() {
                stats.bus_using_patterns += 1;
            }
            let cores = pattern.care_cores(soc);
            for &core in &cores {
                stats.patterns_touching_core[core.index()] += 1;
            }
            core_sets.insert(cores.iter().map(|c| c.raw()).collect());
        }
        stats.distinct_care_core_sets = core_sets.len();
        stats
    }

    /// Mean care bits per pattern (`0.0` for an empty set).
    pub fn mean_care_bits(&self) -> f64 {
        if self.pattern_count == 0 {
            0.0
        } else {
            self.total_care_bits as f64 / self.pattern_count as f64
        }
    }

    /// Fraction of patterns that occupy bus lines (`0.0` for an empty set).
    pub fn bus_usage_fraction(&self) -> f64 {
        if self.pattern_count == 0 {
            0.0
        } else {
            self.bus_using_patterns as f64 / self.pattern_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{RandomPatternConfig, SiPatternSet};
    use soctam_model::Benchmark;

    #[test]
    fn empty_set_has_zero_stats() {
        let soc = Benchmark::D695.soc();
        let stats = SiPatternSet::new().stats(&soc);
        assert_eq!(stats.pattern_count, 0);
        assert_eq!(stats.mean_care_bits(), 0.0);
        assert_eq!(stats.bus_usage_fraction(), 0.0);
    }

    #[test]
    fn care_bits_bounded_by_config() {
        let soc = Benchmark::D695.soc();
        let cfg = RandomPatternConfig::new(500).with_seed(4);
        let stats = SiPatternSet::random(&soc, &cfg).expect("valid").stats(&soc);
        let mean = stats.mean_care_bits();
        assert!(mean >= 1.0 + 1.0, "mean {mean}");
        assert!(mean <= 1.0 + f64::from(cfg.max_aggressors), "mean {mean}");
    }

    #[test]
    fn touch_counts_cover_all_patterns() {
        let soc = Benchmark::D695.soc();
        let set = SiPatternSet::random(&soc, &RandomPatternConfig::new(300)).expect("valid");
        let stats = set.stats(&soc);
        // Every pattern touches at least one core.
        let max_touch = stats.patterns_touching_core.iter().copied().max().unwrap();
        assert!(max_touch > 0);
        assert!(stats.distinct_care_core_sets > 1);
    }
}
