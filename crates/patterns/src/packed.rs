//! The dense, bit-packed pattern kernel.
//!
//! [`SiPattern`] stores care bits sparsely — ideal for construction and
//! IO, but pairwise compatibility then costs a per-symbol merge-join.
//! This module packs a pattern into **bit-planes over `u64` words** so
//! the clique-cover inner loop becomes a handful of AND/XOR/OR ops per
//! 64 terminals:
//!
//! * one *care* plane (bit set ⇔ the terminal is not `x`), and
//! * two *symbol* planes `lo`/`hi` holding the first/second cycle logic
//!   values of [`Symbol::vector_pair`], masked by the care plane. The
//!   2-bit code covers the whole alphabet: `Zero = 00`, `One = 11`,
//!   `Rise = 01`, `Fall = 10` (as `(lo, hi)` pairs).
//!
//! Two patterns conflict on a word exactly where
//! `care_a & care_b & ((lo_a ^ lo_b) | (hi_a ^ hi_b))` is non-zero, and
//! merging compatible patterns is a word-wise OR.
//!
//! Since SI patterns are overwhelmingly `x`, packed patterns stay
//! *sparse at word granularity*: only words with at least one care bit
//! are stored, each tagged with its word index. That per-pattern word
//! index doubles as the first-conflict skip index — patterns that do not
//! overlap a clique are rejected after `O(own words)` comparisons.
//!
//! The bus postfix packs into two bytes per occupied line
//! ([`PackedBusLine`]); the clique accumulator keys a dense occupancy
//! plane by driver core (one `driver + 1` entry per line, `0` = free),
//! so "no shared line is driven from two different core boundaries" is
//! one table probe per occupied line. On random SI sets most
//! incompatibilities are bus-driver conflicts, so the accumulator checks
//! the bus *first* and the common reject path never touches the symbol
//! planes — this prefilter is what [`KernelStats::fast_rejects`] counts.
//!
//! The conversion to and from [`SiPattern`] is lossless;
//! [`PackedPattern::to_sparse`] ∘ [`PackedPattern::from_sparse`] is the
//! identity (pinned by the `proptest` differential suite).

use soctam_model::{BusLineId, CoreId, Soc, TerminalId};

use crate::{PatternError, SiPattern, Symbol};

/// Exclusive upper bound on driver core ids representable in the packed
/// bus postfix (driver ids are stored as one byte per line).
pub const MAX_PACKED_DRIVERS: u32 = 256;

/// Number of `u64` words spanning the 256-line bus space.
const BUS_WORDS: usize = 4;

/// Number of bus lines addressable by the packed postfix.
const BUS_LINES: usize = BUS_WORDS * 64;

/// Number of `u64` words needed to cover `terminals` terminal ids.
#[must_use]
pub fn words_for_terminals(terminals: usize) -> usize {
    terminals.div_ceil(64)
}

/// One 64-terminal slice of a packed pattern: the care plane and the two
/// symbol planes, tagged with its word index (`terminal / 64`).
///
/// `lo`/`hi` hold the first/second cycle logic values of
/// [`Symbol::vector_pair`] and are always masked by `care`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PackedWord {
    /// Word index into the terminal space (`terminal / 64`).
    pub index: u32,
    /// Care plane: bit `b` set ⇔ terminal `index*64 + b` is not `x`.
    pub care: u64,
    /// First-cycle logic values, masked by `care`.
    pub lo: u64,
    /// Second-cycle logic values, masked by `care`.
    pub hi: u64,
}

/// One occupied bus line of a packed pattern: the line index and the
/// core from whose boundary it is driven, in two bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PackedBusLine {
    /// The occupied bus line.
    pub line: u8,
    /// The driver core id (must be < [`MAX_PACKED_DRIVERS`]).
    pub driver: u8,
}

/// Conflict mask of two aligned care/symbol word triples: a bit is set
/// where both patterns care and their symbols disagree.
///
/// This is the **single source of the terminal-compatibility
/// semantics** — the greedy clique accumulator, the pairwise
/// [`PackedPattern`] operations and (through them) the exact
/// branch-and-bound cover all call it.
#[inline]
#[must_use]
fn conflict_planes(care_a: u64, lo_a: u64, hi_a: u64, care_b: u64, lo_b: u64, hi_b: u64) -> u64 {
    care_a & care_b & ((lo_a ^ lo_b) | (hi_a ^ hi_b))
}

/// Conflict mask of two [`PackedWord`]s with the same word index.
#[inline]
#[must_use]
pub fn symbol_conflict(a: &PackedWord, b: &PackedWord) -> u64 {
    debug_assert_eq!(a.index, b.index, "symbol_conflict needs aligned words");
    conflict_planes(a.care, a.lo, a.hi, b.care, b.lo, b.hi)
}

/// A dense, bit-packed SI test pattern: word-sparse care/symbol planes
/// plus the packed bus postfix. Lossless companion of [`SiPattern`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::{PackedPattern, SiPattern, Symbol};
///
/// let a = SiPattern::new(vec![(TerminalId::new(3), Symbol::Rise)], vec![])?;
/// let b = SiPattern::new(vec![(TerminalId::new(3), Symbol::Fall)], vec![])?;
/// let (pa, pb) = (PackedPattern::from_sparse(&a), PackedPattern::from_sparse(&b));
/// assert!(!pa.is_compatible(&pb));
/// assert_eq!(pa.to_sparse(), a);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct PackedPattern {
    words: Vec<PackedWord>,
    bus: Vec<PackedBusLine>,
}

/// A borrowed view of one packed pattern (either a standalone
/// [`PackedPattern`] or a slice of a [`PackedSet`] arena).
#[derive(Clone, Copy, Debug)]
pub struct PackedRef<'a> {
    /// Care/symbol words, ascending by word index.
    pub words: &'a [PackedWord],
    /// Occupied bus lines, ascending by line.
    pub bus: &'a [PackedBusLine],
}

impl PackedRef<'_> {
    /// Total care bits (the sparse pattern's `care_bits().len()`).
    #[must_use]
    #[inline]
    pub fn care_count(&self) -> usize {
        self.words
            .iter()
            .map(|w| w.care.count_ones() as usize)
            .sum()
    }

    /// Total occupied bus lines (the sparse pattern's
    /// `bus_lines().len()`).
    #[must_use]
    #[inline]
    pub fn bus_count(&self) -> usize {
        self.bus.len()
    }
}

fn pack_care(care: &[(TerminalId, Symbol)], out: &mut Vec<PackedWord>) {
    let mut current = PackedWord::default();
    let mut open = false;
    for &(t, s) in care {
        let index = t.raw() / 64;
        let bit = t.raw() % 64;
        if !open || current.index != index {
            if open {
                out.push(current);
            }
            current = PackedWord {
                index,
                ..PackedWord::default()
            };
            open = true;
        }
        let (first, second) = s.vector_pair();
        current.care |= 1 << bit;
        current.lo |= u64::from(first) << bit;
        current.hi |= u64::from(second) << bit;
    }
    if open {
        out.push(current);
    }
}

fn pack_bus(bus: &[(BusLineId, CoreId)], out: &mut Vec<PackedBusLine>) {
    for &(l, d) in bus {
        assert!(
            d.raw() < MAX_PACKED_DRIVERS,
            "bus driver {d} exceeds the packed driver-id limit ({MAX_PACKED_DRIVERS})"
        );
        out.push(PackedBusLine {
            line: l.raw(),
            driver: d.raw() as u8,
        });
    }
}

fn unpack_care(words: &[PackedWord], out: &mut Vec<(TerminalId, Symbol)>) {
    for w in words {
        let mut mask = w.care;
        while mask != 0 {
            let bit = mask.trailing_zeros();
            let terminal = TerminalId::new(w.index * 64 + bit);
            let symbol = Symbol::from_vector_pair((w.lo >> bit) & 1 != 0, (w.hi >> bit) & 1 != 0);
            out.push((terminal, symbol));
            mask &= mask - 1;
        }
    }
}

fn unpack_bus(bus: &[PackedBusLine], out: &mut Vec<(BusLineId, CoreId)>) {
    out.extend(
        bus.iter()
            .map(|&pl| (BusLineId::new(pl.line), CoreId::new(u32::from(pl.driver)))),
    );
}

/// `true` when the sorted word lists never conflict (merge-join with
/// early exit).
fn words_agree(a: &[PackedWord], b: &[PackedWord]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].index.cmp(&b[j].index) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if symbol_conflict(&a[i], &b[j]) != 0 {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
    }
    true
}

/// `true` when the sorted bus line lists never occupy a shared line from
/// two different core boundaries.
fn bus_agrees(a: &[PackedBusLine], b: &[PackedBusLine]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].line.cmp(&b[j].line) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                if a[i].driver != b[j].driver {
                    return false;
                }
                i += 1;
                j += 1;
            }
        }
    }
    true
}

impl PackedPattern {
    /// Packs a sparse pattern. Lossless: [`PackedPattern::to_sparse`]
    /// recovers the input.
    ///
    /// # Panics
    ///
    /// Panics when a bus driver core id is ≥ [`MAX_PACKED_DRIVERS`]
    /// (driver ids are stored as one byte per line).
    #[must_use]
    pub fn from_sparse(pattern: &SiPattern) -> Self {
        let mut words = Vec::new();
        let mut bus = Vec::new();
        pack_care(pattern.care_bits(), &mut words);
        pack_bus(pattern.bus_lines(), &mut bus);
        PackedPattern { words, bus }
    }

    /// Unpacks back to the sparse representation.
    #[must_use]
    // Invariant: a packed pattern stores each terminal in exactly one plane, so the sparse rebuild cannot conflict.
    #[allow(clippy::expect_used)]
    pub fn to_sparse(&self) -> SiPattern {
        let mut care = Vec::with_capacity(self.as_packed_ref().care_count());
        let mut bus = Vec::with_capacity(self.bus.len());
        unpack_care(&self.words, &mut care);
        unpack_bus(&self.bus, &mut bus);
        SiPattern::new(care, bus).expect("packed planes cannot self-conflict")
    }

    /// The care/symbol words, ascending by word index.
    #[must_use]
    pub fn words(&self) -> &[PackedWord] {
        &self.words
    }

    /// The occupied bus lines, ascending by line.
    #[must_use]
    pub fn bus(&self) -> &[PackedBusLine] {
        &self.bus
    }

    /// A borrowed view usable with [`PackedAccumulator`].
    #[must_use]
    pub fn as_packed_ref(&self) -> PackedRef<'_> {
        PackedRef {
            words: &self.words,
            bus: &self.bus,
        }
    }

    /// `true` when the pattern has no care bits and no occupied lines.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty() && self.bus.is_empty()
    }

    /// Word-parallel equivalent of [`SiPattern::is_compatible`].
    #[must_use]
    pub fn is_compatible(&self, other: &PackedPattern) -> bool {
        words_agree(&self.words, &other.words) && bus_agrees(&self.bus, &other.bus)
    }

    /// Word-parallel equivalent of [`SiPattern::merged`]: the word-wise
    /// OR of both patterns.
    ///
    /// # Errors
    ///
    /// Exactly as the sparse version: the *lowest* conflicting terminal
    /// as [`PatternError::ConflictingCareBit`], or — when the care planes
    /// agree — the lowest conflicting bus line as
    /// [`PatternError::ConflictingBusLine`].
    pub fn merged(&self, other: &PackedPattern) -> Result<PackedPattern, PatternError> {
        let mut words = Vec::with_capacity(self.words.len() + other.words.len());
        let (mut i, mut j) = (0, 0);
        while i < self.words.len() && j < other.words.len() {
            let (a, b) = (&self.words[i], &other.words[j]);
            match a.index.cmp(&b.index) {
                std::cmp::Ordering::Less => {
                    words.push(*a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    words.push(*b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let conflict = symbol_conflict(a, b);
                    if conflict != 0 {
                        let terminal = TerminalId::new(a.index * 64 + conflict.trailing_zeros());
                        return Err(PatternError::ConflictingCareBit { terminal });
                    }
                    words.push(PackedWord {
                        index: a.index,
                        care: a.care | b.care,
                        lo: a.lo | b.lo,
                        hi: a.hi | b.hi,
                    });
                    i += 1;
                    j += 1;
                }
            }
        }
        words.extend_from_slice(&self.words[i..]);
        words.extend_from_slice(&other.words[j..]);

        let mut bus = Vec::with_capacity(self.bus.len() + other.bus.len());
        let (mut i, mut j) = (0, 0);
        while i < self.bus.len() && j < other.bus.len() {
            let (a, b) = (self.bus[i], other.bus[j]);
            match a.line.cmp(&b.line) {
                std::cmp::Ordering::Less => {
                    bus.push(a);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    bus.push(b);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    if a.driver != b.driver {
                        return Err(PatternError::ConflictingBusLine { line: a.line });
                    }
                    bus.push(a);
                    i += 1;
                    j += 1;
                }
            }
        }
        bus.extend_from_slice(&self.bus[i..]);
        bus.extend_from_slice(&other.bus[j..]);

        Ok(PackedPattern { words, bus })
    }
}

impl From<&SiPattern> for PackedPattern {
    fn from(pattern: &SiPattern) -> Self {
        PackedPattern::from_sparse(pattern)
    }
}

/// Packed arena over a whole pattern set: every pattern's words live in
/// two shared flat buffers, addressed by per-pattern spans. Packing once
/// per input set avoids one small allocation pair per pattern in the
/// compaction hot path, and the clique-cover scan streams the arena
/// sequentially.
#[derive(Clone, Debug, Default)]
pub struct PackedSet {
    words: Vec<PackedWord>,
    bus: Vec<PackedBusLine>,
    spans: Vec<PackedSpan>,
    max_terminal: Option<u32>,
}

#[derive(Clone, Copy, Debug)]
struct PackedSpan {
    word_off: u32,
    word_len: u32,
    bus_off: u32,
    bus_len: u32,
}

impl PackedSet {
    /// Packs `patterns` (in order) into one arena.
    ///
    /// # Panics
    ///
    /// Panics when a bus driver core id is ≥ [`MAX_PACKED_DRIVERS`].
    #[must_use]
    pub fn build(patterns: &[SiPattern]) -> Self {
        let total_bus: usize = patterns.iter().map(|p| p.bus_lines().len()).sum();
        // One care bit occupies at most one word: a safe upper bound that
        // avoids regrowing the arena mid-pack.
        let total_care: usize = patterns.iter().map(|p| p.care_bits().len()).sum();
        let mut set = PackedSet {
            words: Vec::with_capacity(total_care),
            bus: Vec::with_capacity(total_bus),
            spans: Vec::with_capacity(patterns.len()),
            max_terminal: None,
        };
        for pattern in patterns {
            let word_off = set.words.len() as u32;
            let bus_off = set.bus.len() as u32;
            pack_care(pattern.care_bits(), &mut set.words);
            pack_bus(pattern.bus_lines(), &mut set.bus);
            set.spans.push(PackedSpan {
                word_off,
                word_len: set.words.len() as u32 - word_off,
                bus_off,
                bus_len: set.bus.len() as u32 - bus_off,
            });
            if let Some(&(t, _)) = pattern.care_bits().last() {
                set.max_terminal = Some(set.max_terminal.map_or(t.raw(), |m| m.max(t.raw())));
            }
        }
        set
    }

    /// Number of packed patterns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the set holds no patterns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Borrows pattern `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    #[must_use]
    #[inline]
    pub fn get(&self, i: usize) -> PackedRef<'_> {
        let span = self.spans[i];
        PackedRef {
            words: &self.words[span.word_off as usize..(span.word_off + span.word_len) as usize],
            bus: &self.bus[span.bus_off as usize..(span.bus_off + span.bus_len) as usize],
        }
    }

    /// The largest care terminal id in the set, `None` when no pattern
    /// has care bits. Used to size accumulators and validate against a
    /// SOC's terminal space.
    #[must_use]
    pub fn max_terminal(&self) -> Option<u32> {
        self.max_terminal
    }

    /// Number of `u64` words needed to cover every care terminal in the
    /// set.
    #[must_use]
    pub fn terminal_words(&self) -> usize {
        self.max_terminal
            .map_or(0, |t| words_for_terminals(t as usize + 1))
    }
}

/// Counters of the packed compatibility kernel, surfaced through
/// `soctam-exec` metrics and the CLI `--stats` flag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Care/symbol words compared across all compatibility checks.
    pub words_compared: u64,
    /// Checks rejected by the bus-driver prefilter before any
    /// care/symbol word was compared.
    pub fast_rejects: u64,
}

impl KernelStats {
    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: KernelStats) {
        self.words_compared += other.words_compared;
        self.fast_rejects += other.fast_rejects;
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Plane {
    care: u64,
    lo: u64,
    hi: u64,
}

/// Dense clique accumulator for the greedy cover: full care/symbol
/// planes over the SOC's terminal words, a bus-occupancy plane and a
/// dense per-line driver table (`driver + 1`, `0` = free).
///
/// Between cliques only the *touched* terminal words are cleared, so a
/// pass over `N` patterns costs `O(Σ pattern words)` regardless of the
/// SOC size.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::TerminalId;
/// use soctam_patterns::{PackedAccumulator, PackedPattern, SiPattern, Symbol};
///
/// let a = PackedPattern::from_sparse(&SiPattern::new(
///     vec![(TerminalId::new(0), Symbol::Rise)], vec![])?);
/// let b = PackedPattern::from_sparse(&SiPattern::new(
///     vec![(TerminalId::new(0), Symbol::Fall)], vec![])?);
/// let mut acc = PackedAccumulator::new(1);
/// acc.begin_clique();
/// acc.absorb(a.as_packed_ref());
/// assert!(!acc.is_compatible(b.as_packed_ref()));
/// assert_eq!(acc.extract().to_sparse(), a.to_sparse());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PackedAccumulator {
    planes: Vec<Plane>,
    touched: Vec<u32>,
    bus_occupied: [u64; BUS_WORDS],
    line_driver: [u16; BUS_LINES],
    stats: KernelStats,
}

impl PackedAccumulator {
    /// Creates an accumulator covering `terminal_words` words (use
    /// [`words_for_terminals`] of the SOC's terminal count).
    #[must_use]
    pub fn new(terminal_words: usize) -> Self {
        PackedAccumulator {
            planes: vec![Plane::default(); terminal_words],
            touched: Vec::new(),
            bus_occupied: [0; BUS_WORDS],
            line_driver: [0; BUS_LINES],
            stats: KernelStats::default(),
        }
    }

    /// Clears the accumulated clique (touched words only).
    pub fn begin_clique(&mut self) {
        for &index in &self.touched {
            self.planes[index as usize] = Plane::default();
        }
        self.touched.clear();
        if self.bus_occupied != [0; BUS_WORDS] {
            self.bus_occupied = [0; BUS_WORDS];
            self.line_driver = [0; BUS_LINES];
        }
    }

    /// `true` when `p` is compatible with the accumulated clique.
    ///
    /// The bus postfix is checked *first*: on random SI sets most
    /// incompatibilities are driver conflicts, so the common reject path
    /// never touches the care planes ([`KernelStats::fast_rejects`]).
    ///
    /// # Panics
    ///
    /// Panics when `p` references a word beyond the accumulator's
    /// terminal space.
    #[must_use]
    #[inline]
    pub fn is_compatible(&mut self, p: PackedRef<'_>) -> bool {
        for pl in p.bus {
            let stored = self.line_driver[pl.line as usize];
            if stored != 0 && stored != u16::from(pl.driver) + 1 {
                self.stats.fast_rejects += 1;
                return false;
            }
        }
        let mut compared = 0u64;
        for w in p.words {
            compared += 1;
            let plane = self.planes[w.index as usize];
            if conflict_planes(w.care, w.lo, w.hi, plane.care, plane.lo, plane.hi) != 0 {
                self.stats.words_compared += compared;
                return false;
            }
        }
        self.stats.words_compared += compared;
        true
    }

    /// Merges `p` into the clique (word-wise OR). The caller must have
    /// established compatibility.
    ///
    /// # Panics
    ///
    /// Panics when `p` references a word beyond the accumulator's
    /// terminal space.
    #[inline]
    pub fn absorb(&mut self, p: PackedRef<'_>) {
        for w in p.words {
            let plane = &mut self.planes[w.index as usize];
            if plane.care == 0 {
                self.touched.push(w.index);
            }
            plane.care |= w.care;
            plane.lo |= w.lo;
            plane.hi |= w.hi;
        }
        for pl in p.bus {
            self.bus_occupied[pl.line as usize / 64] |= 1 << (pl.line % 64);
            self.line_driver[pl.line as usize] = u16::from(pl.driver) + 1;
        }
    }

    /// Snapshots the accumulated clique as a standalone pattern.
    pub fn extract(&mut self) -> PackedPattern {
        self.touched.sort_unstable();
        let words = self
            .touched
            .iter()
            .map(|&index| {
                let plane = self.planes[index as usize];
                PackedWord {
                    index,
                    care: plane.care,
                    lo: plane.lo,
                    hi: plane.hi,
                }
            })
            .collect();
        let mut bus = Vec::new();
        for (word, &occupied) in self.bus_occupied.iter().enumerate() {
            let mut mask = occupied;
            while mask != 0 {
                let line = word as u32 * 64 + mask.trailing_zeros();
                bus.push(PackedBusLine {
                    line: line as u8,
                    driver: (self.line_driver[line as usize] - 1) as u8,
                });
                mask &= mask - 1;
            }
        }
        PackedPattern { words, bus }
    }

    /// The kernel counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Returns and resets the kernel counters.
    pub fn take_stats(&mut self) -> KernelStats {
        std::mem::take(&mut self.stats)
    }
}

/// Number of driver-code bit-planes carried per pattern during bus
/// recoding. Driver ids fit one byte, so a line can see at most 256
/// distinct drivers and eight planes always suffice.
const MAX_CODE_PLANES: usize = 8;

/// The per-line driver recoding of a visited subset: every pattern's
/// bus postfix as flattened `(slot, code)` pairs, plus the inverse maps
/// (`slot → line`, `(slot, code) → driver`) used to decode cliques.
struct RecodedBus {
    /// `(slot, code)` pairs of all visited patterns, concatenated.
    pairs: Vec<(u8, u8)>,
    /// Pair range of the `k`-th visited pattern:
    /// `pairs[offsets[k]..offsets[k + 1]]`.
    offsets: Vec<u32>,
    line_of_slot: Vec<u8>,
    driver_of_code: Vec<Vec<u8>>,
    /// Bit width of the largest driver code (≥ 1).
    plane_bits: usize,
}

/// Recodes the bus postfixes of `visit` for the plane-based cover.
///
/// Each distinct line gets a *slot* (dense index, first-encounter
/// order), and each line's drivers get dense codes in first-encounter
/// order. The map is injective per line, so "same line, different
/// driver" is exactly "same slot, different code" and driver equality
/// against a whole clique population can be tested with XORs over
/// per-slot code bit-planes.
///
/// Returns `None` when the subset occupies more than 64 distinct lines
/// (the caller falls back to the accumulator cover).
fn recode_bus(set: &PackedSet, visit: &[u32]) -> Option<RecodedBus> {
    let mut line_slot = [u8::MAX; BUS_LINES];
    let mut rec = RecodedBus {
        pairs: Vec::new(),
        offsets: Vec::with_capacity(visit.len() + 1),
        line_of_slot: Vec::new(),
        driver_of_code: Vec::new(),
        plane_bits: 1,
    };
    let mut max_codes = 1usize;
    rec.offsets.push(0);
    for &i in visit {
        for pl in set.get(i as usize).bus {
            let mut slot = line_slot[pl.line as usize];
            if slot == u8::MAX {
                if rec.line_of_slot.len() == 64 {
                    return None;
                }
                slot = rec.line_of_slot.len() as u8;
                line_slot[pl.line as usize] = slot;
                rec.line_of_slot.push(pl.line);
                rec.driver_of_code.push(Vec::new());
            }
            let codes = &mut rec.driver_of_code[slot as usize];
            let code = match codes.iter().position(|&d| d == pl.driver) {
                Some(code) => code,
                None => {
                    codes.push(pl.driver);
                    max_codes = max_codes.max(codes.len());
                    codes.len() - 1
                }
            };
            rec.pairs.push((slot, code as u8));
        }
        rec.offsets.push(rec.pairs.len() as u32);
    }
    rec.plane_bits = (usize::BITS as usize - (max_codes - 1).leading_zeros() as usize).max(1);
    Some(rec)
}

/// Greedy first-fit clique cover over `visit` (indices into `set`,
/// already in the desired visit order): each pattern joins the
/// lowest-index compatible clique or opens a new one. `terminal_words`
/// sizes the per-clique planes and must cover every care terminal of
/// the set (use [`words_for_terminals`] of the SOC's terminal count).
///
/// This single-pass formulation is *provably identical* to the epoch
/// formulation ("each round, sweep the survivors and absorb whatever is
/// compatible with the accumulated clique"): when pattern `p` is tested
/// against clique `j`, the clique holds exactly the patterns before `p`
/// in visit order that were assigned to `j` — precisely the accumulated
/// state the epoch formulation tests in its `j`-th round. Assignments,
/// check counts and the resulting cliques coincide; what changes is
/// memory behaviour. Instead of re-streaming the whole pattern arena
/// once per clique, each pattern scans a compact clique-state array
/// that stays cache-resident, which is worth ~5× on 10^4-pattern sets.
///
/// The bus prefilter runs on per-line driver-code planes built by the
/// internal bus recoding; subsets spanning more than 64 distinct bus lines
/// take the [`PackedAccumulator`] path instead (identical output, per
/// the same equivalence argument).
///
/// # Panics
///
/// Panics when a pattern references a care word at or beyond
/// `terminal_words`.
#[must_use]
pub fn first_fit_cover(
    set: &PackedSet,
    visit: &[u32],
    terminal_words: usize,
) -> (Vec<PackedPattern>, KernelStats) {
    match recode_bus(set, visit) {
        Some(rec) => match rec.plane_bits {
            1 => cover_with_planes::<1>(set, visit, &rec, terminal_words),
            2 => cover_with_planes::<2>(set, visit, &rec, terminal_words),
            3 => cover_with_planes::<3>(set, visit, &rec, terminal_words),
            4 => cover_with_planes::<4>(set, visit, &rec, terminal_words),
            5 => cover_with_planes::<5>(set, visit, &rec, terminal_words),
            6 => cover_with_planes::<6>(set, visit, &rec, terminal_words),
            _ => cover_with_planes::<MAX_CODE_PLANES>(set, visit, &rec, terminal_words),
        },
        None => cover_with_accumulator(set, visit, terminal_words),
    }
}

/// The fast path of [`first_fit_cover`], monomorphized over the driver
/// code width `P`.
///
/// Clique bus state is kept *transposed*: for every line slot, one
/// bitmask over cliques marking who occupies the line (`occ`) plus `P`
/// bitmasks holding each occupant's driver-code bits. Screening a
/// pattern against **all** cliques at once then costs
/// `O(bus lines × clique words)` — `conflict = occ & (code_plane XOR
/// broadcast(code bit))` accumulated over the pattern's pairs — instead
/// of one probe per clique, and the candidate cliques surviving the
/// bus prefilter are walked in index order for the care/symbol word
/// check. Clique care/symbol planes live in one flat buffer with stride
/// `terminal_words`.
fn cover_with_planes<const P: usize>(
    set: &PackedSet,
    visit: &[u32],
    rec: &RecodedBus,
    terminal_words: usize,
) -> (Vec<PackedPattern>, KernelStats) {
    let nslots = rec.line_of_slot.len();
    // Capacity of the clique bitmasks, in 64-clique words; doubled (with
    // a re-layout) whenever the clique count hits the ceiling.
    let mut cap = 4usize;
    let mut occ_cliques = vec![0u64; nslots * cap];
    let mut code_cliques = vec![0u64; nslots * P * cap];
    let mut conflict = vec![0u64; cap];
    let mut ncliques = 0usize;
    let mut cplanes: Vec<Plane> = Vec::new();
    let mut stats = KernelStats::default();

    for (k, &i) in visit.iter().enumerate() {
        let words = set.get(i as usize).words;
        let pairs = &rec.pairs[rec.offsets[k] as usize..rec.offsets[k + 1] as usize];
        let used = ncliques.div_ceil(64);

        // Bus prefilter: one conflict bit per existing clique.
        conflict[..used].fill(0);
        for &(slot, code) in pairs {
            let occ_base = slot as usize * cap;
            let code_base = slot as usize * P * cap;
            for (w, out) in conflict[..used].iter_mut().enumerate() {
                let mut diff = 0u64;
                for bit in 0..P {
                    let broadcast = 0u64.wrapping_sub(u64::from((code >> bit) & 1));
                    diff |= code_cliques[code_base + bit * cap + w] ^ broadcast;
                }
                *out |= occ_cliques[occ_base + w] & diff;
            }
        }

        // Walk the bus-compatible cliques in index order; first fit wins.
        let mut placed = None;
        let mut rejects = 0u64;
        'scan: for (w, &conflict_word) in conflict[..used].iter().enumerate() {
            let valid = if (w + 1) * 64 <= ncliques {
                u64::MAX
            } else {
                (1u64 << (ncliques - w * 64)) - 1
            };
            let mut candidates = !conflict_word & valid;
            while candidates != 0 {
                let bit = candidates.trailing_zeros();
                let j = w * 64 + bit as usize;
                let base = j * terminal_words;
                let mut compared = 0u64;
                let mut compatible = true;
                for pw in words {
                    compared += 1;
                    let plane = cplanes[base + pw.index as usize];
                    if conflict_planes(pw.care, pw.lo, pw.hi, plane.care, plane.lo, plane.hi) != 0 {
                        compatible = false;
                        break;
                    }
                }
                stats.words_compared += compared;
                if compatible {
                    rejects += u64::from((conflict_word & ((1u64 << bit) - 1)).count_ones());
                    placed = Some(j);
                    break 'scan;
                }
                candidates &= candidates - 1;
            }
            rejects += u64::from(conflict_word.count_ones());
        }
        stats.fast_rejects += rejects;

        let j = match placed {
            Some(j) => {
                absorb_words(
                    &mut cplanes[j * terminal_words..(j + 1) * terminal_words],
                    words,
                );
                j
            }
            None => {
                let j = ncliques;
                if j == cap * 64 {
                    // Double the clique-word capacity, re-laying out the
                    // per-slot rows.
                    let new_cap = cap * 2;
                    let mut new_occ = vec![0u64; nslots * new_cap];
                    let mut new_code = vec![0u64; nslots * P * new_cap];
                    for s in 0..nslots {
                        new_occ[s * new_cap..s * new_cap + cap]
                            .copy_from_slice(&occ_cliques[s * cap..(s + 1) * cap]);
                    }
                    for row in 0..nslots * P {
                        new_code[row * new_cap..row * new_cap + cap]
                            .copy_from_slice(&code_cliques[row * cap..(row + 1) * cap]);
                    }
                    occ_cliques = new_occ;
                    code_cliques = new_code;
                    conflict = vec![0u64; new_cap];
                    cap = new_cap;
                }
                ncliques += 1;
                let base = cplanes.len();
                cplanes.resize(base + terminal_words, Plane::default());
                absorb_words(&mut cplanes[base..], words);
                j
            }
        };
        // Record the pattern's bus pairs against clique `j`. Re-setting
        // bits a clique already holds is idempotent — compatibility
        // guarantees the codes agree.
        let (word, mask) = (j / 64, 1u64 << (j % 64));
        for &(slot, code) in pairs {
            occ_cliques[slot as usize * cap + word] |= mask;
            for bit in 0..P {
                if (code >> bit) & 1 != 0 {
                    code_cliques[(slot as usize * P + bit) * cap + word] |= mask;
                }
            }
        }
    }

    let patterns = (0..ncliques)
        .map(|j| {
            let base = j * terminal_words;
            let words = cplanes[base..base + terminal_words]
                .iter()
                .enumerate()
                .filter(|(_, plane)| plane.care != 0)
                .map(|(index, plane)| PackedWord {
                    index: index as u32,
                    care: plane.care,
                    lo: plane.lo,
                    hi: plane.hi,
                })
                .collect();
            let (word, mask) = (j / 64, 1u64 << (j % 64));
            let mut bus = Vec::new();
            for slot in 0..nslots {
                if occ_cliques[slot * cap + word] & mask == 0 {
                    continue;
                }
                let mut code = 0usize;
                for bit in 0..P {
                    if code_cliques[(slot * P + bit) * cap + word] & mask != 0 {
                        code |= 1 << bit;
                    }
                }
                bus.push(PackedBusLine {
                    line: rec.line_of_slot[slot],
                    driver: rec.driver_of_code[slot][code],
                });
            }
            bus.sort_unstable_by_key(|pl| pl.line);
            PackedPattern { words, bus }
        })
        .collect();
    (patterns, stats)
}

/// ORs `words` into a clique's care/symbol planes.
#[inline]
fn absorb_words(planes: &mut [Plane], words: &[PackedWord]) {
    for w in words {
        let plane = &mut planes[w.index as usize];
        plane.care |= w.care;
        plane.lo |= w.lo;
        plane.hi |= w.hi;
    }
}

/// The general-case path of [`first_fit_cover`] (more than 64 distinct
/// bus lines in the subset): the epoch-based sweep over a
/// [`PackedAccumulator`], whose dense per-line driver table handles the
/// full 256-line space.
// Invariant: the loop only runs while `alive` is non-empty, so the seed draw always succeeds.
#[allow(clippy::expect_used)]
fn cover_with_accumulator(
    set: &PackedSet,
    visit: &[u32],
    terminal_words: usize,
) -> (Vec<PackedPattern>, KernelStats) {
    let mut alive = visit.to_vec();
    let mut accumulator = PackedAccumulator::new(terminal_words);
    let mut rejected: Vec<u32> = Vec::new();
    let mut result = Vec::new();
    while !alive.is_empty() {
        accumulator.begin_clique();
        let mut iter = alive.iter();
        let &seed = iter.next().expect("alive is non-empty");
        accumulator.absorb(set.get(seed as usize));
        for &i in iter {
            let p = set.get(i as usize);
            if accumulator.is_compatible(p) {
                accumulator.absorb(p);
            } else {
                rejected.push(i);
            }
        }
        result.push(accumulator.extract());
        std::mem::swap(&mut alive, &mut rejected);
        rejected.clear();
    }
    (result, accumulator.take_stats())
}

/// Word-aligned ownership map of a SOC's terminal space: for every
/// terminal word, the cores owning bits of that word and their in-word
/// masks. Built once per SOC, it turns care-core extraction (hypergraph
/// construction, pattern bucketing) into a few AND/popcount ops per
/// pattern word.
#[derive(Clone, Debug)]
pub struct PackedLayout {
    word_cores: Vec<Vec<(CoreId, u64)>>,
    word_mask: Vec<u64>,
}

impl PackedLayout {
    /// Builds the layout for `soc`.
    #[must_use]
    pub fn new(soc: &Soc) -> Self {
        let words = words_for_terminals(soc.total_wocs() as usize);
        let mut word_cores: Vec<Vec<(CoreId, u64)>> = vec![Vec::new(); words];
        let mut word_mask = vec![0u64; words];
        for core in soc.core_ids() {
            let range = soc.terminal_range(core);
            let mut t = range.start;
            while t < range.end {
                let word = (t / 64) as usize;
                let upto = ((t / 64 + 1) * 64).min(range.end);
                let len = upto - t;
                let mask = if len == 64 {
                    u64::MAX
                } else {
                    ((1u64 << len) - 1) << (t % 64)
                };
                word_cores[word].push((core, mask));
                word_mask[word] |= mask;
                t = upto;
            }
        }
        PackedLayout {
            word_cores,
            word_mask,
        }
    }

    /// Collects the *care cores* of `p` into `out` (cleared first):
    /// owners of all care terminals plus all bus driver cores, sorted
    /// and deduplicated — exactly [`SiPattern::care_cores`].
    ///
    /// # Panics
    ///
    /// Panics if `p` has a care bit outside the SOC's terminal space.
    // Invariant: out-of-range terminals are a documented `# Panics` contract of this method.
    #[allow(clippy::expect_used)]
    pub fn care_cores_into(&self, p: PackedRef<'_>, out: &mut Vec<CoreId>) {
        out.clear();
        for w in p.words {
            let cores = self
                .word_cores
                .get(w.index as usize)
                .expect("care terminal in range");
            assert!(
                w.care & !self.word_mask[w.index as usize] == 0,
                "care terminal in range"
            );
            for &(core, mask) in cores {
                if w.care & mask != 0 {
                    out.push(core);
                }
            }
        }
        for pl in p.bus {
            out.push(CoreId::new(u32::from(pl.driver)));
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TerminalId {
        TerminalId::new(i)
    }

    fn sparse(care: &[(u32, Symbol)], bus: &[(u8, u32)]) -> SiPattern {
        SiPattern::new(
            care.iter().map(|&(i, s)| (t(i), s)).collect(),
            bus.iter()
                .map(|&(l, d)| (BusLineId::new(l), CoreId::new(d)))
                .collect(),
        )
        .expect("valid pattern")
    }

    #[test]
    fn roundtrip_is_lossless() {
        let p = sparse(
            &[
                (0, Symbol::Rise),
                (63, Symbol::Zero),
                (64, Symbol::Fall),
                (200, Symbol::One),
            ],
            &[(0, 3), (31, 17), (64, 255)],
        );
        assert_eq!(PackedPattern::from_sparse(&p).to_sparse(), p);
        assert_eq!(
            PackedPattern::from_sparse(&SiPattern::default()).to_sparse(),
            SiPattern::default()
        );
    }

    #[test]
    fn packing_is_word_sparse() {
        let p = sparse(&[(0, Symbol::Rise), (640, Symbol::Fall)], &[]);
        let packed = PackedPattern::from_sparse(&p);
        assert_eq!(packed.words().len(), 2);
        assert_eq!(packed.words()[0].index, 0);
        assert_eq!(packed.words()[1].index, 10);
    }

    #[test]
    fn compatibility_matches_sparse() {
        let cases = [
            (
                sparse(&[(5, Symbol::Rise)], &[]),
                sparse(&[(5, Symbol::Rise)], &[]),
            ),
            (
                sparse(&[(5, Symbol::Rise)], &[]),
                sparse(&[(5, Symbol::Fall)], &[]),
            ),
            (
                sparse(&[(5, Symbol::Zero)], &[]),
                sparse(&[(6, Symbol::One)], &[]),
            ),
            (sparse(&[], &[(3, 1)]), sparse(&[], &[(3, 1)])),
            (sparse(&[], &[(3, 1)]), sparse(&[], &[(3, 2)])),
            (
                sparse(&[(70, Symbol::One)], &[(3, 9)]),
                sparse(&[(70, Symbol::Rise)], &[(3, 9)]),
            ),
        ];
        for (a, b) in &cases {
            let (pa, pb) = (PackedPattern::from_sparse(a), PackedPattern::from_sparse(b));
            assert_eq!(pa.is_compatible(&pb), a.is_compatible(b), "{a:?} vs {b:?}");
            assert_eq!(pb.is_compatible(&pa), a.is_compatible(b));
        }
    }

    #[test]
    fn merged_matches_sparse_including_error() {
        let a = sparse(&[(1, Symbol::Rise), (100, Symbol::Zero)], &[(2, 4)]);
        let b = sparse(&[(2, Symbol::Fall)], &[(7, 1)]);
        let merged = PackedPattern::from_sparse(&a)
            .merged(&PackedPattern::from_sparse(&b))
            .expect("compatible");
        assert_eq!(merged.to_sparse(), a.merged(&b).expect("compatible"));

        let c = sparse(&[(1, Symbol::Fall), (100, Symbol::One)], &[]);
        let sparse_err = a.merged(&c).unwrap_err();
        let packed_err = PackedPattern::from_sparse(&a)
            .merged(&PackedPattern::from_sparse(&c))
            .unwrap_err();
        assert_eq!(format!("{packed_err:?}"), format!("{sparse_err:?}"));

        let d = sparse(&[], &[(2, 5)]);
        let sparse_err = a.merged(&d).unwrap_err();
        let packed_err = PackedPattern::from_sparse(&a)
            .merged(&PackedPattern::from_sparse(&d))
            .unwrap_err();
        assert_eq!(format!("{packed_err:?}"), format!("{sparse_err:?}"));
    }

    #[test]
    fn set_arena_matches_standalone_packing() {
        let patterns = vec![
            sparse(&[(0, Symbol::Rise)], &[(0, 1)]),
            sparse(&[], &[]),
            sparse(&[(64, Symbol::Fall), (65, Symbol::One)], &[]),
        ];
        let set = PackedSet::build(&patterns);
        assert_eq!(set.len(), 3);
        assert_eq!(set.max_terminal(), Some(65));
        assert_eq!(set.terminal_words(), 2);
        for (i, p) in patterns.iter().enumerate() {
            let packed = PackedPattern::from_sparse(p);
            assert_eq!(set.get(i).words, packed.words());
            assert_eq!(set.get(i).bus, packed.bus());
        }
    }

    #[test]
    fn accumulator_agrees_with_pairwise_merge() {
        let a = sparse(&[(3, Symbol::Rise), (90, Symbol::Zero)], &[(1, 2)]);
        let b = sparse(&[(4, Symbol::Fall)], &[(1, 2), (5, 3)]);
        let c = sparse(&[(3, Symbol::Fall)], &[]); // symbol conflict with a
        let d = sparse(&[], &[(5, 4)]); // driver conflict with b

        let mut acc = PackedAccumulator::new(2);
        acc.begin_clique();
        acc.absorb(PackedPattern::from_sparse(&a).as_packed_ref());
        assert!(acc.is_compatible(PackedPattern::from_sparse(&b).as_packed_ref()));
        acc.absorb(PackedPattern::from_sparse(&b).as_packed_ref());
        assert!(!acc.is_compatible(PackedPattern::from_sparse(&c).as_packed_ref()));
        assert!(!acc.is_compatible(PackedPattern::from_sparse(&d).as_packed_ref()));

        let clique = acc.extract().to_sparse();
        assert_eq!(clique, a.merged(&b).expect("compatible"));

        let stats = acc.take_stats();
        assert!(stats.words_compared > 0);
        assert_eq!(stats.fast_rejects, 1); // only d rejects at the bus stage
        assert_eq!(acc.stats(), KernelStats::default());
    }

    #[test]
    fn accumulator_reset_clears_state() {
        let a = sparse(&[(3, Symbol::Rise)], &[(1, 2)]);
        let conflicting = sparse(&[(3, Symbol::Fall)], &[(1, 3)]);
        let mut acc = PackedAccumulator::new(1);
        acc.begin_clique();
        acc.absorb(PackedPattern::from_sparse(&a).as_packed_ref());
        assert!(!acc.is_compatible(PackedPattern::from_sparse(&conflicting).as_packed_ref()));
        acc.begin_clique();
        assert!(acc.is_compatible(PackedPattern::from_sparse(&conflicting).as_packed_ref()));
    }

    #[test]
    #[should_panic(expected = "packed driver-id limit")]
    fn oversized_driver_id_panics() {
        let p = SiPattern::new(vec![], vec![(BusLineId::new(0), CoreId::new(256))])
            .expect("valid pattern");
        let _ = PackedPattern::from_sparse(&p);
    }

    #[test]
    fn layout_care_cores_match_sparse() {
        use soctam_model::CoreSpec;
        let soc = Soc::new(
            "t",
            vec![
                CoreSpec::new("a", 1, 70, 0, vec![], 1).expect("valid"),
                CoreSpec::new("b", 1, 3, 0, vec![], 1).expect("valid"),
            ],
        )
        .expect("valid soc");
        let layout = PackedLayout::new(&soc);
        let p = sparse(&[(69, Symbol::Rise), (70, Symbol::Fall)], &[(2, 0)]);
        let mut cores = Vec::new();
        layout.care_cores_into(PackedPattern::from_sparse(&p).as_packed_ref(), &mut cores);
        assert_eq!(cores, p.care_cores(&soc));
    }

    /// First-fit cover built from pairwise [`PackedPattern::merged`]
    /// calls only — the semantic reference both cover paths must match.
    fn reference_cover(set: &PackedSet, visit: &[u32]) -> Vec<PackedPattern> {
        let mut cliques: Vec<PackedPattern> = Vec::new();
        for &i in visit {
            let p = set.get(i as usize);
            let p = PackedPattern {
                words: p.words.to_vec(),
                bus: p.bus.to_vec(),
            };
            let mut placed = false;
            for clique in cliques.iter_mut() {
                if let Ok(merged) = clique.merged(&p) {
                    *clique = merged;
                    placed = true;
                    break;
                }
            }
            if !placed {
                cliques.push(p);
            }
        }
        cliques
    }

    #[test]
    fn first_fit_cover_matches_pairwise_reference() {
        use crate::{RandomPatternConfig, SiPatternSet};
        let soc = soctam_model::Benchmark::D695.soc();
        let raw = SiPatternSet::random(&soc, &RandomPatternConfig::new(400).with_seed(11))
            .expect("valid set");
        let set = PackedSet::build(raw.as_slice());
        let visit: Vec<u32> = (0..raw.len() as u32).collect();
        let words = words_for_terminals(soc.total_wocs() as usize);
        let (cover, stats) = first_fit_cover(&set, &visit, words);
        assert_eq!(cover, reference_cover(&set, &visit));
        assert!(cover.len() < raw.len());
        assert!(stats.words_compared > 0);
        assert!(stats.fast_rejects > 0);
    }

    #[test]
    fn first_fit_cover_falls_back_beyond_64_lines() {
        // 70 distinct lines force the accumulator path; its output must
        // still match the pairwise reference.
        let patterns: Vec<SiPattern> = (0..140u32)
            .map(|i| {
                let symbol = if i % 2 == 0 {
                    Symbol::Rise
                } else {
                    Symbol::Fall
                };
                sparse(&[(i % 40, symbol)], &[((i % 70) as u8, i / 70)])
            })
            .collect();
        let set = PackedSet::build(&patterns);
        let visit: Vec<u32> = (0..patterns.len() as u32).collect();
        let (cover, _) = first_fit_cover(&set, &visit, 1);
        assert_eq!(cover, reference_cover(&set, &visit));
        assert!(cover.len() > 1);
    }

    #[test]
    fn first_fit_cover_handles_empty_and_busless_sets() {
        let (cover, stats) = first_fit_cover(&PackedSet::default(), &[], 4);
        assert!(cover.is_empty());
        assert_eq!(stats, KernelStats::default());

        // No bus lines at all: the prefilter planes are degenerate and
        // every check falls through to the care/symbol words.
        let patterns = vec![
            sparse(&[(0, Symbol::Rise)], &[]),
            sparse(&[(0, Symbol::Fall)], &[]),
            sparse(&[(1, Symbol::One)], &[]),
        ];
        let set = PackedSet::build(&patterns);
        let (cover, _) = first_fit_cover(&set, &[0, 1, 2], 1);
        assert_eq!(cover, reference_cover(&set, &[0, 1, 2]));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn kernel_stats_merge_adds() {
        let mut a = KernelStats {
            words_compared: 3,
            fast_rejects: 1,
        };
        a.merge(KernelStats {
            words_compared: 4,
            fast_rejects: 2,
        });
        assert_eq!(
            a,
            KernelStats {
                words_compared: 7,
                fast_rejects: 3,
            }
        );
    }
}
