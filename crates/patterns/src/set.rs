//! Owned collections of SI patterns.

use soctam_model::{Diagnostic, Diagnostics, Soc, TerminalId};

use crate::generator::{
    generate_random, generate_random_with, maximal_aggressor, reduced_mt, RandomPatternConfig,
};
use crate::{PatternError, PatternSetStats, SiPattern};

/// An owned set of SI test patterns.
///
/// This is the unit the two-dimensional compaction pipeline consumes.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam_model::{Benchmark, TerminalId};
/// use soctam_patterns::SiPatternSet;
///
/// let soc = Benchmark::D695.soc();
/// let bundle: Vec<TerminalId> = soc
///     .terminal_range(soctam_model::CoreId::new(4))
///     .take(16)
///     .map(TerminalId::new)
///     .collect();
/// let set = SiPatternSet::maximal_aggressor(&bundle)?;
/// assert_eq!(set.len(), 6 * 16);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SiPatternSet {
    patterns: Vec<SiPattern>,
}

impl SiPatternSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        SiPatternSet::default()
    }

    /// Wraps an existing pattern list.
    pub fn from_patterns(patterns: Vec<SiPattern>) -> Self {
        SiPatternSet { patterns }
    }

    /// Generates the paper's randomized experimental pattern set.
    ///
    /// # Errors
    ///
    /// See [`generate_random`].
    pub fn random(soc: &Soc, config: &RandomPatternConfig) -> Result<Self, PatternError> {
        Ok(SiPatternSet {
            patterns: generate_random(soc, config)?,
        })
    }

    /// As [`SiPatternSet::random`], generating patterns in parallel on
    /// `pool`. Output is bit-identical to the serial variant for any
    /// pool size.
    ///
    /// # Errors
    ///
    /// See [`generate_random`].
    pub fn random_with(
        soc: &Soc,
        config: &RandomPatternConfig,
        pool: &soctam_exec::Pool,
    ) -> Result<Self, PatternError> {
        Ok(SiPatternSet {
            patterns: generate_random_with(soc, config, pool)?,
        })
    }

    /// Generates the maximal-aggressor test set for one bundle.
    ///
    /// # Errors
    ///
    /// See [`maximal_aggressor`].
    pub fn maximal_aggressor(bundle: &[TerminalId]) -> Result<Self, PatternError> {
        Ok(SiPatternSet {
            patterns: maximal_aggressor(bundle)?,
        })
    }

    /// Generates the reduced-MT test set for one bundle with locality `k`.
    ///
    /// # Errors
    ///
    /// See [`reduced_mt`].
    pub fn reduced_mt(bundle: &[TerminalId], k: u32) -> Result<Self, PatternError> {
        Ok(SiPatternSet {
            patterns: reduced_mt(bundle, k)?,
        })
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// `true` when the set holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Borrows the patterns.
    pub fn as_slice(&self) -> &[SiPattern] {
        &self.patterns
    }

    /// Iterates over the patterns.
    pub fn iter(&self) -> std::slice::Iter<'_, SiPattern> {
        self.patterns.iter()
    }

    /// Consumes the set, returning the pattern list.
    pub fn into_vec(self) -> Vec<SiPattern> {
        self.patterns
    }

    /// Validates every pattern against `soc`'s terminal space.
    ///
    /// # Errors
    ///
    /// Returns the first [`PatternError::TerminalOutOfRange`] found.
    pub fn validate_for(&self, soc: &Soc) -> Result<(), PatternError> {
        self.patterns.iter().try_for_each(|p| p.validate_for(soc))
    }

    /// Validates the whole set against `soc`, collecting every finding
    /// instead of stopping at the first (contrast
    /// [`SiPatternSet::validate_for`]).
    ///
    /// Codes raised here (see DESIGN.md §8):
    ///
    /// * `PAT-V01` — a care bit references a terminal outside the SOC's
    ///   terminal space;
    /// * `PAT-V02` — a pattern is empty (no care bits and no bus
    ///   lines), so it consumes test time without testing anything;
    /// * `PAT-V03` — a bus line's driver core is out of range for the
    ///   SOC.
    pub fn validate(&self, soc: &Soc) -> Diagnostics {
        const SITE: &str = "patterns.validate";
        let mut diags = Diagnostics::new();
        let total = soc.total_wocs();
        let num_cores = soc.num_cores();
        for (index, pattern) in self.patterns.iter().enumerate() {
            for &(terminal, _) in pattern.care_bits() {
                if terminal.raw() >= total {
                    diags.push(Diagnostic::new(
                        "PAT-V01",
                        SITE,
                        format!(
                            "pattern {index} references {terminal} outside the \
                             {total}-terminal space"
                        ),
                        "regenerate the pattern set against this SOC",
                    ));
                }
            }
            if pattern.care_bits().is_empty() && pattern.bus_lines().is_empty() {
                diags.push(Diagnostic::new(
                    "PAT-V02",
                    SITE,
                    format!("pattern {index} is empty (no care bits, no bus lines)"),
                    "drop empty patterns before compaction; they waste test time",
                ));
            }
            for &(line, driver) in pattern.bus_lines() {
                if driver.index() >= num_cores {
                    diags.push(Diagnostic::new(
                        "PAT-V03",
                        SITE,
                        format!(
                            "pattern {index} occupies {line} for driver {driver} \
                             but the soc has {num_cores} cores"
                        ),
                        "regenerate the pattern set against this SOC",
                    ));
                }
            }
        }
        diags
    }

    /// Summary statistics of the set over `soc`.
    ///
    /// # Panics
    ///
    /// Panics if a pattern references a terminal outside `soc` (validate
    /// first for untrusted data).
    pub fn stats(&self, soc: &Soc) -> PatternSetStats {
        PatternSetStats::compute(self, soc)
    }
}

impl From<Vec<SiPattern>> for SiPatternSet {
    fn from(patterns: Vec<SiPattern>) -> Self {
        SiPatternSet::from_patterns(patterns)
    }
}

impl FromIterator<SiPattern> for SiPatternSet {
    fn from_iter<T: IntoIterator<Item = SiPattern>>(iter: T) -> Self {
        SiPatternSet {
            patterns: iter.into_iter().collect(),
        }
    }
}

impl Extend<SiPattern> for SiPatternSet {
    fn extend<T: IntoIterator<Item = SiPattern>>(&mut self, iter: T) {
        self.patterns.extend(iter);
    }
}

impl IntoIterator for SiPatternSet {
    type Item = SiPattern;
    type IntoIter = std::vec::IntoIter<SiPattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.into_iter()
    }
}

impl<'a> IntoIterator for &'a SiPatternSet {
    type Item = &'a SiPattern;
    type IntoIter = std::slice::Iter<'a, SiPattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Symbol;

    fn pattern(t: u32) -> SiPattern {
        SiPattern::new(vec![(TerminalId::new(t), Symbol::Rise)], vec![]).expect("valid")
    }

    #[test]
    fn collects_from_iterator() {
        let set: SiPatternSet = (0..5).map(pattern).collect();
        assert_eq!(set.len(), 5);
        assert!(!set.is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut set = SiPatternSet::new();
        set.extend((0..3).map(pattern));
        set.extend((3..5).map(pattern));
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn into_iter_roundtrips() {
        let set: SiPatternSet = (0..4).map(pattern).collect();
        let back: SiPatternSet = set.clone().into_iter().collect();
        assert_eq!(set, back);
    }

    #[test]
    fn validate_collects_every_finding() {
        use soctam_model::{CoreSpec, Soc};
        // 2 cores, 3 + 0 WOCs -> terminal space of size 3.
        let soc = Soc::new(
            "v",
            vec![
                CoreSpec::new("a", 1, 3, 0, vec![], 1).expect("valid"),
                CoreSpec::new("b", 1, 0, 0, vec![], 1).expect("valid"),
            ],
        )
        .expect("valid soc");
        let good = pattern(0);
        let out_of_range = pattern(7);
        let empty = SiPattern::new(vec![], vec![]).expect("valid");
        let set = SiPatternSet::from_patterns(vec![good, out_of_range, empty]);
        let diags = set.validate(&soc);
        let codes: Vec<&str> = diags.items().iter().map(|d| d.code()).collect();
        assert_eq!(codes, vec!["PAT-V01", "PAT-V02"]);
        // The in-range-only prefix passes.
        assert!(SiPatternSet::from_patterns(vec![pattern(2)])
            .validate(&soc)
            .is_ok());
    }
}
