//! Error type for pattern construction and generation.

use std::error::Error;
use std::fmt;

use soctam_model::TerminalId;

/// Errors produced when building SI patterns or pattern sets.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PatternError {
    /// The same terminal was assigned two different care symbols.
    ConflictingCareBit {
        /// The doubly-assigned terminal.
        terminal: TerminalId,
    },
    /// The same bus line was occupied on behalf of two different cores.
    ConflictingBusLine {
        /// Index of the doubly-occupied line.
        line: u8,
    },
    /// A care bit referenced a terminal outside the SOC's terminal space.
    TerminalOutOfRange {
        /// The offending terminal.
        terminal: TerminalId,
        /// Size of the terminal space.
        total: u32,
    },
    /// Pattern generation needs at least this many terminals.
    NotEnoughTerminals {
        /// Terminals required by the generator configuration.
        required: u32,
        /// Terminals available in the SOC.
        available: u32,
    },
    /// The generator configuration is internally inconsistent (for example
    /// an empty aggressor range).
    InvalidConfig {
        /// Human-readable description.
        message: String,
    },
    /// A deterministic failpoint fired (see `soctam_exec::fault`).
    FaultInjected {
        /// Name of the failpoint site that fired.
        site: String,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::ConflictingCareBit { terminal } => {
                write!(f, "terminal {terminal} assigned two different care symbols")
            }
            PatternError::ConflictingBusLine { line } => {
                write!(f, "bus line {line} occupied for two different driver cores")
            }
            PatternError::TerminalOutOfRange { terminal, total } => write!(
                f,
                "terminal {terminal} outside the {total}-terminal space of the soc"
            ),
            PatternError::NotEnoughTerminals {
                required,
                available,
            } => write!(
                f,
                "pattern generation needs {required} terminals but the soc has {available}"
            ),
            PatternError::InvalidConfig { message } => {
                write!(f, "invalid generator configuration: {message}")
            }
            PatternError::FaultInjected { site } => {
                write!(f, "injected fault at failpoint `{site}`")
            }
        }
    }
}

impl Error for PatternError {}

impl From<soctam_exec::FaultError> for PatternError {
    fn from(fault: soctam_exec::FaultError) -> Self {
        PatternError::FaultInjected {
            site: fault.site().to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_terminal() {
        let err = PatternError::ConflictingCareBit {
            terminal: TerminalId::new(9),
        };
        assert!(err.to_string().contains("t9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<PatternError>();
    }
}
