//! Maximal-aggressor fault coverage analysis.
//!
//! The MA model defines six faults per victim line (Cuviello et al.): the
//! victim is quiescent at `0`/`1` while all aggressors rise or fall
//! (glitch faults), or the victim transitions against unanimous opposite
//! aggressors (delay/speedup faults). This module grades an arbitrary SI
//! pattern set against that fault list over an interconnect topology —
//! useful for checking what a randomized or compacted set actually
//! detects.
//!
//! The strict MA criterion needs *every* bundle line to act as an
//! aggressor; passing a `locality` restricts the aggressor set to the
//! `k`-neighbourhood (the same locality argument the reduced-MT model
//! makes), which is the realistic criterion for long bundles.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soctam_model::topology::{Bundle, InterconnectTopology};
//! use soctam_model::{Benchmark, TerminalId};
//! use soctam_patterns::coverage::ma_coverage;
//! use soctam_patterns::generator::maximal_aggressor;
//!
//! let soc = Benchmark::D695.soc();
//! let bundle = Bundle::new("ch0", (0..8).map(TerminalId::new).collect())?;
//! let topo = InterconnectTopology::new(&soc, vec![bundle])?;
//! let patterns = maximal_aggressor(topo.bundles()[0].terminals())?;
//! let report = ma_coverage(&topo, &patterns, None);
//! assert_eq!(report.fraction(), 1.0); // the MA set covers itself
//! # Ok(())
//! # }
//! ```

use std::collections::{BTreeMap, BTreeSet};

use soctam_model::topology::InterconnectTopology;
use soctam_model::TerminalId;

use crate::{SiPattern, Symbol};

/// One of the six MA fault cases per victim line.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MaCase {
    /// Victim quiescent `0`, all aggressors rise (positive glitch).
    GlitchLowRise,
    /// Victim quiescent `0`, all aggressors fall.
    GlitchLowFall,
    /// Victim quiescent `1`, all aggressors rise.
    GlitchHighRise,
    /// Victim quiescent `1`, all aggressors fall (negative glitch).
    GlitchHighFall,
    /// Victim rises against falling aggressors (delay).
    DelayRise,
    /// Victim falls against rising aggressors (delay).
    DelayFall,
}

impl MaCase {
    /// All six cases.
    pub const ALL: [MaCase; 6] = [
        MaCase::GlitchLowRise,
        MaCase::GlitchLowFall,
        MaCase::GlitchHighRise,
        MaCase::GlitchHighFall,
        MaCase::DelayRise,
        MaCase::DelayFall,
    ];

    /// The victim's symbol in this case.
    pub fn victim_symbol(self) -> Symbol {
        match self {
            MaCase::GlitchLowRise | MaCase::GlitchLowFall => Symbol::Zero,
            MaCase::GlitchHighRise | MaCase::GlitchHighFall => Symbol::One,
            MaCase::DelayRise => Symbol::Rise,
            MaCase::DelayFall => Symbol::Fall,
        }
    }

    /// The unanimous aggressor symbol in this case.
    pub fn aggressor_symbol(self) -> Symbol {
        match self {
            MaCase::GlitchLowRise | MaCase::GlitchHighRise | MaCase::DelayFall => Symbol::Rise,
            MaCase::GlitchLowFall | MaCase::GlitchHighFall | MaCase::DelayRise => Symbol::Fall,
        }
    }
}

/// An MA coverage report over one topology.
#[derive(Clone, Debug, PartialEq)]
pub struct MaCoverage {
    /// Total faults: `6 ×` the number of victim lines across all bundles.
    pub total_faults: usize,
    /// Faults detected by at least one pattern.
    pub covered_faults: usize,
    /// Per-bundle `(name, covered, total)` breakdown.
    pub per_bundle: Vec<(String, usize, usize)>,
}

impl MaCoverage {
    /// Covered fraction in `[0, 1]` (`1.0` for an empty fault list).
    pub fn fraction(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.covered_faults as f64 / self.total_faults as f64
        }
    }
}

/// Grades `patterns` against the MA fault list of `topology`.
///
/// With `locality = None` the strict MA criterion applies (every other
/// bundle line must carry the unanimous aggressor transition); with
/// `locality = Some(k)` only the `k`-neighbourhood must.
pub fn ma_coverage(
    topology: &InterconnectTopology,
    patterns: &[SiPattern],
    locality: Option<usize>,
) -> MaCoverage {
    // terminal -> (bundle, line index) occurrences.
    let mut occurrences: BTreeMap<TerminalId, Vec<(usize, usize)>> = BTreeMap::new();
    for (b, bundle) in topology.bundles().iter().enumerate() {
        for (i, &terminal) in bundle.terminals().iter().enumerate() {
            occurrences.entry(terminal).or_default().push((b, i));
        }
    }

    let mut covered: BTreeSet<(usize, usize, MaCase)> = BTreeSet::new();
    for pattern in patterns {
        for &(terminal, symbol) in pattern.care_bits() {
            let Some(sites) = occurrences.get(&terminal) else {
                continue;
            };
            for &(b, i) in sites {
                let bundle = &topology.bundles()[b];
                let k = locality.unwrap_or(bundle.len());
                for case in MaCase::ALL {
                    if case.victim_symbol() != symbol || covered.contains(&(b, i, case)) {
                        continue;
                    }
                    let unanimous = bundle
                        .neighbours(i, k)
                        .iter()
                        .all(|&a| pattern.symbol_at(a) == Some(case.aggressor_symbol()));
                    if unanimous {
                        covered.insert((b, i, case));
                    }
                }
            }
        }
    }

    let mut per_bundle = Vec::with_capacity(topology.bundles().len());
    for (b, bundle) in topology.bundles().iter().enumerate() {
        let total = 6 * bundle.len();
        let hit = covered.iter().filter(|&&(cb, _, _)| cb == b).count();
        per_bundle.push((bundle.name().to_owned(), hit, total));
    }
    MaCoverage {
        total_faults: 6 * topology.total_victims(),
        covered_faults: covered.len(),
        per_bundle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{maximal_aggressor, reduced_mt};
    use crate::{RandomPatternConfig, SiPatternSet};
    use soctam_model::topology::Bundle;
    use soctam_model::Benchmark;

    fn topo(lines: u32) -> InterconnectTopology {
        let soc = Benchmark::D695.soc();
        let bundle = Bundle::new("b", (0..lines).map(TerminalId::new).collect()).expect("valid");
        InterconnectTopology::new(&soc, vec![bundle]).expect("valid")
    }

    #[test]
    fn ma_set_covers_itself_completely() {
        let topo = topo(10);
        let patterns = maximal_aggressor(topo.bundles()[0].terminals()).expect("valid");
        let report = ma_coverage(&topo, &patterns, None);
        assert_eq!(report.covered_faults, report.total_faults);
        assert_eq!(report.total_faults, 6 * 10);
    }

    #[test]
    fn reduced_mt_covers_ma_at_matching_locality() {
        let topo = topo(8);
        let patterns = reduced_mt(topo.bundles()[0].terminals(), 2).expect("valid");
        let report = ma_coverage(&topo, &patterns, Some(2));
        assert_eq!(
            report.fraction(),
            1.0,
            "MT includes the unanimous assignments within its window"
        );
    }

    #[test]
    fn random_patterns_cover_little_strict_ma() {
        let soc = Benchmark::D695.soc();
        let topo = topo(16);
        let set =
            SiPatternSet::random(&soc, &RandomPatternConfig::new(500).with_seed(3)).expect("valid");
        let strict = ma_coverage(&topo, set.as_slice(), None);
        let relaxed = ma_coverage(&topo, set.as_slice(), Some(1));
        assert!(strict.fraction() < 0.3, "strict {}", strict.fraction());
        assert!(
            relaxed.covered_faults >= strict.covered_faults,
            "relaxing locality never loses coverage"
        );
    }

    #[test]
    fn empty_pattern_set_covers_nothing() {
        let topo = topo(6);
        let report = ma_coverage(&topo, &[], None);
        assert_eq!(report.covered_faults, 0);
        assert!(report.fraction() < f64::EPSILON);
    }

    #[test]
    fn per_bundle_breakdown_sums_to_total() {
        let soc = Benchmark::D695.soc();
        let b1 = Bundle::new("a", (0..6).map(TerminalId::new).collect()).expect("valid");
        let b2 = Bundle::new("b", (6..12).map(TerminalId::new).collect()).expect("valid");
        let topo = InterconnectTopology::new(&soc, vec![b1, b2]).expect("valid");
        let mut patterns = maximal_aggressor(topo.bundles()[0].terminals()).expect("valid");
        patterns.extend(maximal_aggressor(topo.bundles()[1].terminals()).expect("valid"));
        let report = ma_coverage(&topo, &patterns, None);
        let sum: usize = report.per_bundle.iter().map(|&(_, c, _)| c).sum();
        assert_eq!(sum, report.covered_faults);
        assert_eq!(report.fraction(), 1.0);
    }

    #[test]
    fn case_symbols_match_the_model() {
        assert_eq!(MaCase::GlitchLowRise.victim_symbol(), Symbol::Zero);
        assert_eq!(MaCase::GlitchLowRise.aggressor_symbol(), Symbol::Rise);
        assert_eq!(MaCase::DelayRise.victim_symbol(), Symbol::Rise);
        assert_eq!(MaCase::DelayRise.aggressor_symbol(), Symbol::Fall);
        // Victim symbols cover all four symbols; each appears in the list.
        let victims: std::collections::HashSet<_> =
            MaCase::ALL.iter().map(|c| c.victim_symbol()).collect();
        assert_eq!(victims.len(), 4);
    }
}
