//! Property tests for the fault-model generators over random bundles.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam_exec::check::{cases, forall, Gen};
use soctam_model::topology::{Bundle, InterconnectTopology};
use soctam_model::{Benchmark, TerminalId};
use soctam_patterns::coverage::ma_coverage;
use soctam_patterns::generator::{maximal_aggressor, reduced_mt, shorts_opens};

/// Distinct terminals inside d695's 1000+-terminal space, 2..40 of them.
fn random_bundle(g: &mut Gen) -> Vec<TerminalId> {
    let len = g.usize_in(2, 40);
    let mut set = std::collections::BTreeSet::new();
    while set.len() < len {
        set.insert(g.u32_in(0, 300));
    }
    set.into_iter().map(TerminalId::new).collect()
}

/// The MA set always has exactly 6N patterns, each fully specified
/// over the bundle.
#[test]
fn ma_count_and_shape() {
    forall("ma_count_and_shape", cases(64), |g| {
        let bundle = random_bundle(g);
        let patterns = maximal_aggressor(&bundle).expect("valid bundle");
        assert_eq!(patterns.len(), 6 * bundle.len());
        for p in &patterns {
            assert_eq!(p.care_bits().len(), bundle.len());
        }
    });
}

/// Reduced-MT pattern counts match the edge-adjusted closed form and
/// the MA set is a subset in coverage terms (every MA fault at the
/// same locality is covered).
#[test]
fn mt_count_matches_closed_form() {
    forall("mt_count_matches_closed_form", cases(64), |g| {
        let bundle = random_bundle(g);
        let k = g.u32_in(1, 3);
        let patterns = reduced_mt(&bundle, k).expect("valid");
        let n = bundle.len();
        let expected: usize = (0..n)
            .map(|i| {
                let neighbours = i.min(k as usize) + (n - 1 - i).min(k as usize);
                4usize << neighbours
            })
            .sum();
        assert_eq!(patterns.len(), expected);
    });
}

/// Reduced-MT at locality k covers the full localized MA fault list.
#[test]
fn mt_covers_localized_ma() {
    forall("mt_covers_localized_ma", cases(64), |g| {
        let bundle = random_bundle(g);
        let k = g.u32_in(1, 3);
        let soc = Benchmark::D695.soc();
        let b = Bundle::new("b", bundle.clone()).expect("valid");
        let topo = InterconnectTopology::new(&soc, vec![b]).expect("valid");
        let patterns = reduced_mt(&bundle, k).expect("valid");
        let report = ma_coverage(&topo, &patterns, Some(k as usize));
        assert_eq!(report.covered_faults, report.total_faults);
    });
}

/// Shorts/opens vectors: logarithmic count, unique per-wire signatures,
/// both logic levels seen by every wire.
#[test]
fn shorts_opens_properties() {
    forall("shorts_opens_properties", cases(64), |g| {
        let bundle = random_bundle(g);
        let vectors = shorts_opens(&bundle).expect("valid");
        let n = bundle.len() as u64;
        assert_eq!(vectors.len() as u32, 64 - (n + 1).leading_zeros());
        let mut signatures = std::collections::HashSet::new();
        for &t in &bundle {
            let sig: Vec<_> = vectors
                .iter()
                .map(|v| v.symbol_at(t).expect("fully specified"))
                .collect();
            assert!(signatures.insert(sig.clone()), "duplicate signature");
            assert!(sig.contains(&soctam_patterns::Symbol::Zero));
            assert!(sig.contains(&soctam_patterns::Symbol::One));
        }
    });
}
