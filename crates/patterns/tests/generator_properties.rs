//! Property tests for the fault-model generators over random bundles.

use proptest::prelude::*;

use soctam_model::topology::{Bundle, InterconnectTopology};
use soctam_model::{Benchmark, TerminalId};
use soctam_patterns::coverage::ma_coverage;
use soctam_patterns::generator::{maximal_aggressor, reduced_mt, shorts_opens};

fn bundle_strategy() -> impl Strategy<Value = Vec<TerminalId>> {
    // Distinct terminals inside d695's 1000+-terminal space.
    proptest::collection::btree_set(0u32..300, 2..40)
        .prop_map(|set| set.into_iter().map(TerminalId::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MA set always has exactly 6N patterns, each fully specified
    /// over the bundle.
    #[test]
    fn ma_count_and_shape(bundle in bundle_strategy()) {
        let patterns = maximal_aggressor(&bundle).expect("valid bundle");
        prop_assert_eq!(patterns.len(), 6 * bundle.len());
        for p in &patterns {
            prop_assert_eq!(p.care_bits().len(), bundle.len());
        }
    }

    /// Reduced-MT pattern counts match the edge-adjusted closed form and
    /// the MA set is a subset in coverage terms (every MA fault at the
    /// same locality is covered).
    #[test]
    fn mt_count_matches_closed_form(bundle in bundle_strategy(), k in 1u32..3) {
        let patterns = reduced_mt(&bundle, k).expect("valid");
        let n = bundle.len();
        let expected: usize = (0..n)
            .map(|i| {
                let neighbours = i.min(k as usize) + (n - 1 - i).min(k as usize);
                4usize << neighbours
            })
            .sum();
        prop_assert_eq!(patterns.len(), expected);
    }

    /// Reduced-MT at locality k covers the full localized MA fault list.
    #[test]
    fn mt_covers_localized_ma(bundle in bundle_strategy(), k in 1u32..3) {
        let soc = Benchmark::D695.soc();
        let b = Bundle::new("b", bundle.clone()).expect("valid");
        let topo = InterconnectTopology::new(&soc, vec![b]).expect("valid");
        let patterns = reduced_mt(&bundle, k).expect("valid");
        let report = ma_coverage(&topo, &patterns, Some(k as usize));
        prop_assert_eq!(report.covered_faults, report.total_faults);
    }

    /// Shorts/opens vectors: logarithmic count, unique per-wire signatures,
    /// both logic levels seen by every wire.
    #[test]
    fn shorts_opens_properties(bundle in bundle_strategy()) {
        let vectors = shorts_opens(&bundle).expect("valid");
        let n = bundle.len() as u64;
        prop_assert_eq!(vectors.len() as u32, 64 - (n + 1).leading_zeros());
        let mut signatures = std::collections::HashSet::new();
        for &t in &bundle {
            let sig: Vec<_> = vectors
                .iter()
                .map(|v| v.symbol_at(t).expect("fully specified"))
                .collect();
            prop_assert!(signatures.insert(sig.clone()), "duplicate signature");
            prop_assert!(sig.contains(&soctam_patterns::Symbol::Zero));
            prop_assert!(sig.contains(&soctam_patterns::Symbol::One));
        }
    }
}
