//! The experiment harness regenerating the paper's Tables 2 and 3.
//!
//! For one SOC and one raw pattern count `N_r`, the harness sweeps the
//! SOC-level TAM width `W_max` and, per width, reports:
//!
//! * `T_[8]` — total time when the architecture is optimized for InTest
//!   only (the TR-Architect baseline of reference \[8\]) and the
//!   1-D-compacted SI tests are merely scheduled on it afterwards;
//! * `T_gi` — total time from the proposed `TAM_Optimization` with the SI
//!   tests two-dimensionally compacted into `i` partitions;
//! * `T_min = min_i T_gi` and the paper's improvement metrics
//!   `ΔT_[8] = (T_[8] − T_min) / T_[8]` and `ΔT_g = (T_g1 − T_min) / T_g1`.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soctam::experiment::{run_table, ExperimentConfig};
//! use soctam::Benchmark;
//!
//! let soc = Benchmark::D695.soc();
//! let config = ExperimentConfig {
//!     pattern_count: 500,
//!     widths: vec![8, 16],
//!     partitions: vec![1, 2],
//!     seed: 42,
//! };
//! let table = run_table(&soc, &config)?;
//! assert_eq!(table.rows.len(), 2);
//! println!("{table}");
//! # Ok(())
//! # }
//! ```

use std::fmt;
use std::sync::Arc;

use soctam_compaction::{compact_two_dimensional_with, CompactionConfig};
use soctam_exec::{CancelToken, Pool, Progress};
use soctam_model::Soc;
use soctam_patterns::{RandomPatternConfig, SiPatternSet};
use soctam_tam::{backend_for, BackendCtx, BackendKind, Objective, SiGroupSpec};

use crate::SoctamError;

/// Parameters of one table run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Raw SI pattern count `N_r`.
    pub pattern_count: usize,
    /// TAM widths to sweep (the paper uses `8, 16, …, 64`).
    pub widths: Vec<u32>,
    /// SI partition counts to sweep (the paper uses `1, 2, 4, 8`).
    pub partitions: Vec<u32>,
    /// Seed for pattern generation and partitioning.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's full sweep for the given `N_r`.
    pub fn paper_sweep(pattern_count: usize) -> Self {
        ExperimentConfig {
            pattern_count,
            widths: (1..=8).map(|i| i * 8).collect(),
            partitions: vec![1, 2, 4, 8],
            seed: 2007,
        }
    }
}

/// One row of a results table (one `W_max`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableRow {
    /// The SOC-level TAM width.
    pub w_max: u32,
    /// `T_[8]`: the SI-oblivious baseline's total time.
    pub t_baseline: u64,
    /// `(i, T_gi)` per partition count, in sweep order.
    pub t_partitioned: Vec<(u32, u64)>,
}

impl TableRow {
    /// `T_min = min_i T_gi`.
    pub fn t_min(&self) -> u64 {
        self.t_partitioned
            .iter()
            .map(|&(_, t)| t)
            .min()
            .unwrap_or(self.t_baseline)
    }

    /// `ΔT_[8] = (T_[8] − T_min) / T_[8]` in percent (negative when the
    /// baseline wins, which the paper also observes for small widths).
    pub fn delta_baseline_pct(&self) -> f64 {
        let t8 = self.t_baseline as f64;
        (t8 - self.t_min() as f64) / t8 * 100.0
    }

    /// `ΔT_g = (T_g1 − T_min) / T_g1` in percent: the benefit of 2-D over
    /// 1-D compaction.
    pub fn delta_g_pct(&self) -> f64 {
        let g1 = self
            .t_partitioned
            .iter()
            .find(|&&(i, _)| i == 1)
            .map(|&(_, t)| t as f64)
            .unwrap_or(self.t_baseline as f64);
        (g1 - self.t_min() as f64) / g1 * 100.0
    }
}

/// A full results table for one SOC and one `N_r`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExperimentTable {
    /// SOC name.
    pub soc_name: String,
    /// Raw pattern count `N_r`.
    pub pattern_count: usize,
    /// Compacted pattern count per partition count `(i, count)`.
    pub compacted_counts: Vec<(u32, u64)>,
    /// One row per swept width.
    pub rows: Vec<TableRow>,
}

impl fmt::Display for ExperimentTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "SOC {}  N_r = {}  (compacted: {})",
            self.soc_name,
            self.pattern_count,
            self.compacted_counts
                .iter()
                .map(|(i, c)| format!("g{i}={c}"))
                .collect::<Vec<_>>()
                .join(", ")
        )?;
        write!(f, "{:>5} {:>10}", "Wmax", "T_[8]")?;
        for &(i, _) in self.rows.first().map_or(&[][..], |r| &r.t_partitioned) {
            write!(f, " {:>10}", format!("T_g{i}"))?;
        }
        writeln!(f, " {:>10} {:>8} {:>7}", "T_min", "dT[8]%", "dTg%")?;
        for row in &self.rows {
            write!(f, "{:>5} {:>10}", row.w_max, row.t_baseline)?;
            for &(_, t) in &row.t_partitioned {
                write!(f, " {t:>10}")?;
            }
            writeln!(
                f,
                " {:>10} {:>8.2} {:>7.2}",
                row.t_min(),
                row.delta_baseline_pct(),
                row.delta_g_pct()
            )?;
        }
        Ok(())
    }
}

/// Runs the full sweep for one SOC: generates `N_r` random SI patterns
/// (the paper's recipe), compacts them once per partition count, then
/// optimizes the TAM for every width — SI-obliviously for `T_[8]` and
/// SI-aware for every `T_gi`.
///
/// # Errors
///
/// Forwards generation, compaction and optimization errors.
pub fn run_table(soc: &Soc, config: &ExperimentConfig) -> Result<ExperimentTable, SoctamError> {
    run_table_with(soc, config, &Pool::serial())
}

/// [`run_table`] with every stage on `pool`: pattern generation fans out
/// per pattern, compaction per partition count and the
/// `widths × (baseline + partitions)` optimization grid per cell. The
/// grid is reduced in sweep order, so the table is bit-identical to the
/// serial run for any pool size.
///
/// # Errors
///
/// Same contract as [`run_table`].
pub fn run_table_with(
    soc: &Soc,
    config: &ExperimentConfig,
    pool: &Pool,
) -> Result<ExperimentTable, SoctamError> {
    run_table_cached(soc, config, pool, None)
}

/// [`run_table_with`] reusing a shared evaluator cache across the grid
/// and across calls. The cache only skips recomputation; results are
/// bit-identical with or without it (cache keys carry a per-context
/// fingerprint, so entries from other SOCs or sweeps can never alias).
///
/// # Errors
///
/// Same contract as [`run_table`].
pub fn run_table_cached(
    soc: &Soc,
    config: &ExperimentConfig,
    pool: &Pool,
    cache: Option<&soctam_tam::EvalCache>,
) -> Result<ExperimentTable, SoctamError> {
    let opts = TableOpts {
        cache: cache.cloned(),
        ..TableOpts::default()
    };
    run_table_opts(soc, config, pool, &opts)
}

/// Optional extras for a table run, all defaulting to off. None of them
/// changes results — the cache only skips recomputation, the probe pool
/// only reschedules speculative candidate probes (reduced in candidate
/// order either way) and the progress sink is purely advisory.
#[derive(Clone, Debug, Default)]
pub struct TableOpts {
    /// Shared evaluator cache (see [`run_table_cached`]).
    pub cache: Option<soctam_tam::EvalCache>,
    /// Pool for the optimizer's speculative candidate probing; `None`
    /// keeps probes on the calling worker.
    pub probe_pool: Option<Pool>,
    /// Progress sink for a live display (phase, probes, best `T_soc`).
    pub progress: Option<Arc<Progress>>,
    /// Cooperative cancellation: a tripped token makes every remaining
    /// grid cell degrade to its best-so-far architecture (the run still
    /// returns a complete, valid table).
    pub cancel: Option<CancelToken>,
    /// TAM-optimization backend used for every grid cell (baseline
    /// column included). Defaults to [`BackendKind::TrArchitect`].
    pub backend: BackendKind,
}

/// [`run_table_cached`] with the full option set ([`TableOpts`]).
///
/// # Errors
///
/// Same contract as [`run_table`].
pub fn run_table_opts(
    soc: &Soc,
    config: &ExperimentConfig,
    pool: &Pool,
    opts: &TableOpts,
) -> Result<ExperimentTable, SoctamError> {
    let cache = opts.cache.as_ref();
    let metrics = pool.metrics();
    let raw = metrics.time("generate", || {
        SiPatternSet::random_with(
            soc,
            &RandomPatternConfig::new(config.pattern_count).with_seed(config.seed),
            pool,
        )
    })?;

    // Compaction is width-independent: do it once per partition count.
    let compacted: Result<Vec<_>, _> = metrics.time("compact", || {
        pool.par_map(&config.partitions, |&parts| {
            compact_two_dimensional_with(
                soc,
                &raw,
                &CompactionConfig::new(parts).with_seed(config.seed),
                pool,
            )
            .map(|c| (parts, c.total_patterns(), SiGroupSpec::from_compacted(&c)))
        })
        .into_iter()
        .collect()
    });
    let compacted = compacted?;
    let compacted_counts: Vec<(u32, u64)> =
        compacted.iter().map(|&(i, count, _)| (i, count)).collect();
    let compacted_groups: Vec<(u32, Vec<SiGroupSpec>)> = compacted
        .into_iter()
        .map(|(i, _, groups)| (i, groups))
        .collect();
    // The baseline schedules the 1-D-compacted tests (or the first sweep
    // entry when 1 is not swept).
    let baseline_groups: Vec<SiGroupSpec> = compacted_groups
        .iter()
        .find(|&&(i, _)| i == 1)
        .or(compacted_groups.first())
        .map(|(_, g)| g.clone())
        .unwrap_or_default();

    // One grid point per (width, column): column 0 is the baseline,
    // column j > 0 the (j-1)-th partition sweep entry.
    let columns = 1 + compacted_groups.len();
    let grid: Vec<(u32, usize)> = config
        .widths
        .iter()
        .flat_map(|&w| (0..columns).map(move |col| (w, col)))
        .collect();
    let times: Result<Vec<u64>, SoctamError> = metrics.time("optimize", || {
        pool.par_map(&grid, |&(w_max, col)| {
            let (groups, objective) = if col == 0 {
                (&baseline_groups, Objective::InTestOnly)
            } else {
                (&compacted_groups[col - 1].1, Objective::Total)
            };
            let ctx = BackendCtx {
                soc,
                max_width: w_max,
                groups,
                objective,
                restarts: 1,
                pool: pool.clone(),
                probe_pool: opts.probe_pool.clone(),
                budget: Default::default(),
                eval_cache: cache.cloned(),
                progress: opts.progress.as_ref().map(Arc::clone),
                cancel: opts.cancel.clone(),
            };
            Ok(backend_for(opts.backend)
                .optimize(&ctx)?
                .evaluation()
                .t_total())
        })
        .into_iter()
        .collect()
    });
    let times = times?;

    let rows = config
        .widths
        .iter()
        .enumerate()
        .map(|(wi, &w_max)| {
            let cell = |col: usize| times[wi * columns + col];
            TableRow {
                w_max,
                t_baseline: cell(0),
                t_partitioned: compacted_groups
                    .iter()
                    .enumerate()
                    .map(|(j, (parts, _))| (*parts, cell(j + 1)))
                    .collect(),
            }
        })
        .collect();

    Ok(ExperimentTable {
        soc_name: soc.name().to_owned(),
        pattern_count: config.pattern_count,
        compacted_counts,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_model::Benchmark;

    #[test]
    fn small_sweep_produces_consistent_rows() {
        let soc = Benchmark::D695.soc();
        let config = ExperimentConfig {
            pattern_count: 300,
            widths: vec![8, 24],
            partitions: vec![1, 2],
            seed: 3,
        };
        let table = run_table(&soc, &config).expect("runs");
        assert_eq!(table.rows.len(), 2);
        for row in &table.rows {
            assert!(row.t_min() <= row.t_baseline.max(row.t_partitioned[0].1));
            assert!(row.t_partitioned.iter().all(|&(_, t)| t > 0));
        }
        // Wider TAM is never slower.
        assert!(table.rows[1].t_min() <= table.rows[0].t_min());
    }

    #[test]
    fn display_renders_all_columns() {
        let soc = Benchmark::D695.soc();
        let config = ExperimentConfig {
            pattern_count: 200,
            widths: vec![16],
            partitions: vec![1, 4],
            seed: 7,
        };
        let table = run_table(&soc, &config).expect("runs");
        let rendered = table.to_string();
        assert!(rendered.contains("T_[8]"));
        assert!(rendered.contains("T_g1"));
        assert!(rendered.contains("T_g4"));
        assert!(rendered.contains("T_min"));
    }

    #[test]
    fn delta_metrics_match_definitions() {
        let row = TableRow {
            w_max: 8,
            t_baseline: 200,
            t_partitioned: vec![(1, 150), (2, 100)],
        };
        assert_eq!(row.t_min(), 100);
        assert!((row.delta_baseline_pct() - 50.0).abs() < 1e-9);
        assert!((row.delta_g_pct() - 100.0 / 3.0).abs() < 1e-9);
    }
}
