//! # soctam — SOC test architecture optimization for signal-integrity faults
//!
//! A from-scratch Rust implementation of Xu, Zhang and Chakrabarty, *"SOC
//! Test Architecture Optimization for Signal Integrity Faults on
//! Core-External Interconnects"*, DAC 2007, together with every substrate
//! the paper depends on:
//!
//! | layer | crate | contents |
//! |-------|-------|----------|
//! | SOC model | [`model`] | cores, terminal space, ITC'02 `.soc` parser, embedded benchmarks |
//! | wrappers | [`wrapper`] | balanced wrapper scan chains, InTest/SI time models |
//! | SI patterns | [`patterns`] | Table-1 pattern algebra, MA / reduced-MT / random generators |
//! | partitioner | [`hypergraph`] | multilevel FM k-way hypergraph partitioner (hMetis substitute) |
//! | compaction | [`compaction`] | two-dimensional SI test-set compaction (Section 3) |
//! | TAM | [`tam`] | TestRails, Algorithm 1 scheduling, Algorithm 2 optimization, TR-Architect baseline |
//! | tester | [`tester`] | bit-level tester-program generation, cycle-accurate model cross-check |
//!
//! This crate re-exports the whole stack and adds two conveniences:
//!
//! * [`SiOptimizer`] — the one-stop pipeline *(patterns → 2-D compaction →
//!   SI-aware TAM optimization)*;
//! * [`experiment`] — the sweep runner that regenerates the paper's
//!   Tables 2 and 3.
//!
//! # Quickstart
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use soctam::{Benchmark, RandomPatternConfig, SiOptimizer, SiPatternSet};
//!
//! let soc = Benchmark::D695.soc();
//! let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(2_000).with_seed(7))?;
//! let result = SiOptimizer::new(&soc)
//!     .max_tam_width(16)
//!     .partitions(4)
//!     .optimize(&patterns)?;
//! println!(
//!     "T_soc = {} cc (InTest {}, SI {})",
//!     result.total_time(),
//!     result.intest_time(),
//!     result.si_time()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod error;
pub mod experiment;
mod pipeline;

pub use error::SoctamError;
pub use pipeline::{SiOptimizationResult, SiOptimizer};

pub use soctam_compaction as compaction;
pub use soctam_exec as exec;
pub use soctam_hypergraph as hypergraph;
pub use soctam_model as model;
pub use soctam_patterns as patterns;
pub use soctam_tam as tam;
pub use soctam_tester as tester;
pub use soctam_wrapper as wrapper;

// The workhorse types, flattened for convenience.
pub use soctam_compaction::{
    compact_two_dimensional, compact_two_dimensional_with, CompactedSiTests, CompactionConfig,
    SiTestGroup,
};
pub use soctam_exec::{FaultAction, FaultError, Metrics, MetricsSnapshot, Pool};
pub use soctam_model::{Benchmark, CoreId, CoreSpec, Diagnostic, Diagnostics, Soc, TerminalId};
pub use soctam_patterns::{RandomPatternConfig, SiPattern, SiPatternSet, Symbol};
pub use soctam_tam::{
    backend_for, BackendCaps, BackendCtx, BackendKind, DeltaCost, EvalCache, Evaluation, Evaluator,
    Objective, OptimizedArchitecture, OptimizerBudget, RailEval, SiGroupSpec, TamBackend,
    TamOptimizer, TestBusEvaluator, TestRail, TestRailArchitecture,
};
pub use soctam_wrapper::{intest_time, si_time, TimeTable, WrapperDesign};
