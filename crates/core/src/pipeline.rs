//! The one-stop optimization pipeline.

use std::panic;
use std::sync::Arc;

use soctam_compaction::{compact_two_dimensional_with, CompactedSiTests, CompactionConfig};
use soctam_exec::{fault, CancelToken, Metrics, Pool, Progress};
use soctam_model::Soc;
use soctam_patterns::SiPatternSet;
use soctam_tam::{
    backend_for, BackendCtx, BackendKind, EvalCache, Evaluation, Objective, OptimizedArchitecture,
    OptimizerBudget, SiGroupSpec, TestRailArchitecture,
};

use crate::SoctamError;

/// Runs one pipeline stage with panic containment: a panicking worker
/// (or an injected `fault::hit`) surfaces as a structured
/// [`SoctamError::Internal`] naming the failpoint site instead of
/// unwinding into the caller. Sound because every stage either returns
/// a value or is discarded wholesale — no partially-mutated state
/// escapes the closure.
fn contain_panics<T>(
    stage: &'static str,
    f: impl FnOnce() -> Result<T, SoctamError>,
) -> Result<T, SoctamError> {
    match panic::catch_unwind(panic::AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => Err(SoctamError::Internal {
            site: fault::fault_from_panic(payload.as_ref())
                .map(|fault| fault.site().to_string())
                .unwrap_or_else(|| stage.to_string()),
            message: fault::panic_message(payload.as_ref()),
        }),
    }
}

/// The full Problem `P_SI_opt` pipeline: two-dimensional compaction of the
/// SI test set followed by SI-aware TAM optimization.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use soctam::{Benchmark, RandomPatternConfig, SiOptimizer, SiPatternSet};
///
/// let soc = Benchmark::D695.soc();
/// let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(1_000))?;
/// let result = SiOptimizer::new(&soc)
///     .max_tam_width(24)
///     .partitions(2)
///     .optimize(&patterns)?;
/// assert!(result.architecture().total_width() <= 24);
/// assert_eq!(
///     result.total_time(),
///     result.intest_time() + result.si_time()
/// );
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SiOptimizer<'a> {
    soc: &'a Soc,
    max_tam_width: u32,
    partitions: u32,
    seed: u64,
    objective: Objective,
    backend: BackendKind,
    restarts: u32,
    pool: Pool,
    probe_pool: Option<Pool>,
    progress: Option<Arc<Progress>>,
    budget: OptimizerBudget,
    eval_cache: Option<EvalCache>,
    cancel: Option<CancelToken>,
}

impl<'a> SiOptimizer<'a> {
    /// Creates a pipeline for `soc` with defaults matching the paper's
    /// setup: a 32-wire TAM, 4 SI partitions, seed 0, total-time objective.
    pub fn new(soc: &'a Soc) -> Self {
        SiOptimizer {
            soc,
            max_tam_width: 32,
            partitions: 4,
            seed: 0,
            objective: Objective::Total,
            backend: BackendKind::TrArchitect,
            restarts: 1,
            pool: Pool::serial(),
            probe_pool: None,
            progress: None,
            budget: OptimizerBudget::unlimited(),
            eval_cache: None,
            cancel: None,
        }
    }

    /// Serves TAM evaluation lookups from `cache`, a store that may be
    /// shared across pipeline runs (and, in `soctam-serve`, across
    /// requests): identical per-rail evaluations become warm cache
    /// hits. Results are bit-identical with or without sharing.
    pub fn eval_cache(mut self, cache: EvalCache) -> Self {
        self.eval_cache = Some(cache);
        self
    }

    /// Bounds the TAM optimization work. When the budget trips, the
    /// pipeline still returns a valid architecture — the best found so
    /// far — flagged [`SiOptimizationResult::degraded`].
    pub fn budget(mut self, budget: OptimizerBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the pipeline on `jobs` threads (0 = all available cores).
    /// Results are bit-identical for every job count; only wall-clock
    /// changes. Shorthand for [`SiOptimizer::pool`] with a fresh pool.
    pub fn jobs(self, jobs: usize) -> Self {
        self.pool(Pool::new(jobs))
    }

    /// Runs the pipeline on an existing [`Pool`] (shared across runs,
    /// metrics accumulate in the pool's [`Metrics`]).
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Probes optimizer move candidates on `jobs` threads (0 = all
    /// available cores), independent of the compaction pool. Results
    /// are bit-identical for every probe-job count; only wall-clock
    /// changes. Shorthand for [`SiOptimizer::probe_pool`].
    pub fn probe_jobs(self, jobs: usize) -> Self {
        self.probe_pool(Pool::new(jobs))
    }

    /// Probes optimizer move candidates on an existing [`Pool`]. When
    /// unset, candidate probing shares the pipeline's main pool.
    pub fn probe_pool(mut self, pool: Pool) -> Self {
        self.probe_pool = Some(pool);
        self
    }

    /// Publishes optimizer phase / probe-count / best-objective updates
    /// into `progress` for a live display such as the CLI `--progress`
    /// stderr ticker. Purely advisory; never affects results.
    pub fn progress(mut self, progress: Arc<Progress>) -> Self {
        self.progress = Some(progress);
        self
    }

    /// Observes `cancel` at every optimizer budget checkpoint. A
    /// tripped token degrades the run to its best-so-far architecture
    /// ([`SiOptimizationResult::degraded`]) — never an error.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The metrics of the pipeline's pool: task/steal counters, cache
    /// hits and misses, per-phase wall-clock. Snapshot after
    /// [`SiOptimizer::optimize`] to report runtime statistics.
    pub fn metrics(&self) -> Arc<Metrics> {
        self.pool.metrics()
    }

    /// Sets the SOC-level TAM width budget `W_max`.
    pub fn max_tam_width(mut self, width: u32) -> Self {
        self.max_tam_width = width;
        self
    }

    /// Sets the SI partition count `i` (1 disables horizontal compaction).
    pub fn partitions(mut self, partitions: u32) -> Self {
        self.partitions = partitions;
        self
    }

    /// Sets the seed for the hypergraph partitioner.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the optimization objective ([`Objective::InTestOnly`]
    /// reproduces the TR-Architect / `T_[8]` baseline).
    pub fn objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the number of multi-start restarts for the TAM optimizer
    /// (1 = the paper's single deterministic run).
    pub fn restarts(mut self, restarts: u32) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Selects the TAM-optimization backend. The default,
    /// [`BackendKind::TrArchitect`], is the paper's bandwidth-matching
    /// `TAM_Optimization`; every backend reports the shared
    /// `Evaluator`'s verdict on its architecture.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Runs compaction and optimization on `patterns`, with strict
    /// validation at every stage boundary: the SOC and the pattern set
    /// are validated before compaction, and the final SI schedule is
    /// validated before the result is returned. Worker panics are
    /// contained and surface as [`SoctamError::Internal`].
    ///
    /// # Errors
    ///
    /// Forwards compaction and TAM errors ([`SoctamError`]);
    /// [`SoctamError::Validation`] when a stage boundary check fails.
    pub fn optimize(&self, patterns: &SiPatternSet) -> Result<SiOptimizationResult, SoctamError> {
        self.soc.validate().into_result()?;
        patterns.validate(self.soc).into_result()?;
        let compacted = contain_panics("pipeline.compact", || {
            self.pool
                .metrics()
                .time("compact", || {
                    compact_two_dimensional_with(
                        self.soc,
                        patterns,
                        &CompactionConfig::new(self.partitions).with_seed(self.seed),
                        &self.pool,
                    )
                })
                .map_err(SoctamError::from)
        })?;
        self.optimize_compacted(compacted)
    }

    /// Runs only the TAM-optimization half on already-compacted groups.
    ///
    /// # Errors
    ///
    /// Forwards TAM errors ([`SoctamError`]); [`SoctamError::Validation`]
    /// when the produced SI schedule fails its structural checks.
    pub fn optimize_compacted(
        &self,
        compacted: CompactedSiTests,
    ) -> Result<SiOptimizationResult, SoctamError> {
        let optimized = contain_panics("pipeline.optimize", || {
            let groups = SiGroupSpec::from_compacted(&compacted);
            let ctx = BackendCtx {
                soc: self.soc,
                max_width: self.max_tam_width,
                groups: &groups,
                objective: self.objective,
                restarts: self.restarts,
                pool: self.pool.clone(),
                probe_pool: self.probe_pool.clone(),
                budget: self.budget,
                eval_cache: self.eval_cache.clone(),
                progress: self.progress.as_ref().map(Arc::clone),
                cancel: self.cancel.clone(),
            };
            let optimized = self
                .pool
                .metrics()
                .time("optimize", || backend_for(self.backend).optimize(&ctx))?;
            Ok(optimized)
        })?;
        optimized.evaluation().schedule.validate().into_result()?;
        Ok(SiOptimizationResult {
            compacted,
            optimized,
        })
    }
}

/// The outcome of [`SiOptimizer::optimize`].
#[derive(Clone, Debug)]
pub struct SiOptimizationResult {
    compacted: CompactedSiTests,
    optimized: OptimizedArchitecture,
}

impl SiOptimizationResult {
    /// The compacted SI test set.
    pub fn compacted(&self) -> &CompactedSiTests {
        &self.compacted
    }

    /// The optimized TestRail architecture.
    pub fn architecture(&self) -> &TestRailArchitecture {
        self.optimized.architecture()
    }

    /// The full timing evaluation (rails, groups, schedule).
    pub fn evaluation(&self) -> &Evaluation {
        self.optimized.evaluation()
    }

    /// `T_soc = T_soc^in + T_soc^si` in clock cycles.
    pub fn total_time(&self) -> u64 {
        self.evaluation().t_total()
    }

    /// `T_soc^in` in clock cycles.
    pub fn intest_time(&self) -> u64 {
        self.evaluation().t_in
    }

    /// `T_soc^si` in clock cycles.
    pub fn si_time(&self) -> u64 {
        self.evaluation().t_si
    }

    /// True when the optimizer hit its [`OptimizerBudget`] and the
    /// architecture is best-so-far rather than fully converged.
    pub fn degraded(&self) -> bool {
        self.optimized.degraded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soctam_model::Benchmark;
    use soctam_patterns::RandomPatternConfig;

    #[test]
    fn pipeline_runs_on_every_benchmark() {
        for bench in Benchmark::ALL {
            let soc = bench.soc();
            let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(500).with_seed(1))
                .expect("valid");
            let result = SiOptimizer::new(&soc)
                .max_tam_width(16)
                .partitions(2)
                .optimize(&patterns)
                .expect("optimizes");
            assert!(result.total_time() > 0, "{bench}");
            assert!(result.architecture().total_width() <= 16);
        }
    }

    #[test]
    fn baseline_objective_reports_si_too() {
        let soc = Benchmark::D695.soc();
        let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(400)).expect("valid");
        let result = SiOptimizer::new(&soc)
            .max_tam_width(8)
            .partitions(1)
            .objective(Objective::InTestOnly)
            .optimize(&patterns)
            .expect("optimizes");
        // Even the InTest-only baseline schedules the SI tests afterwards.
        assert!(result.si_time() > 0);
    }

    #[test]
    fn restarts_never_worsen_the_result() {
        let soc = Benchmark::D695.soc();
        let patterns =
            SiPatternSet::random(&soc, &RandomPatternConfig::new(800).with_seed(2)).expect("valid");
        let single = SiOptimizer::new(&soc)
            .max_tam_width(16)
            .optimize(&patterns)
            .expect("optimizes")
            .total_time();
        let multi = SiOptimizer::new(&soc)
            .max_tam_width(16)
            .restarts(4)
            .optimize(&patterns)
            .expect("optimizes")
            .total_time();
        assert!(multi <= single);
    }

    #[test]
    fn budget_degrades_but_schedule_stays_valid() {
        use std::time::Duration;
        let soc = Benchmark::P34392.soc();
        let patterns =
            SiPatternSet::random(&soc, &RandomPatternConfig::new(500).with_seed(3)).expect("valid");
        let result = SiOptimizer::new(&soc)
            .max_tam_width(16)
            .partitions(2)
            .budget(OptimizerBudget::default().with_deadline(Duration::from_millis(50)))
            .optimize(&patterns)
            .expect("degrades, does not fail");
        // Degraded or not (a fast machine may finish in time), the
        // schedule must pass the structural validator.
        assert!(result.evaluation().schedule.validate().is_ok());
        assert!(result.architecture().total_width() <= 16);
        // A budget that cannot possibly suffice must degrade.
        let strangled = SiOptimizer::new(&soc)
            .max_tam_width(16)
            .partitions(2)
            .budget(OptimizerBudget::default().with_max_iterations(1))
            .optimize(&patterns)
            .expect("degrades, does not fail");
        assert!(strangled.degraded());
        assert!(strangled.evaluation().schedule.validate().is_ok());
    }

    #[test]
    fn deterministic_end_to_end() {
        let soc = Benchmark::D695.soc();
        let patterns =
            SiPatternSet::random(&soc, &RandomPatternConfig::new(600).with_seed(5)).expect("valid");
        let run = || {
            SiOptimizer::new(&soc)
                .max_tam_width(16)
                .partitions(4)
                .seed(9)
                .optimize(&patterns)
                .expect("optimizes")
                .total_time()
        };
        assert_eq!(run(), run());
    }
}
