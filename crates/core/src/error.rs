//! The top-level error type.

use std::error::Error;
use std::fmt;

use soctam_compaction::CompactionError;
use soctam_model::{Diagnostics, ModelError};
use soctam_patterns::PatternError;
use soctam_tam::TamError;

/// Any error produced by the `soctam` pipeline.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SoctamError {
    /// SOC model construction or parsing failed.
    Model(ModelError),
    /// Pattern construction or generation failed.
    Pattern(PatternError),
    /// Test-set compaction failed.
    Compaction(CompactionError),
    /// TAM construction or optimization failed.
    Tam(TamError),
    /// A stage-boundary validation found inconsistent data (see
    /// [`Diagnostics`] for the individual findings).
    Validation(Diagnostics),
    /// A pipeline stage panicked; the panic was contained at the
    /// pipeline boundary instead of unwinding into the caller.
    Internal {
        /// The failpoint site that caused the panic, or `"unknown"` when
        /// the panic did not originate from an injected fault.
        site: String,
        /// The panic message.
        message: String,
    },
}

impl fmt::Display for SoctamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoctamError::Model(e) => write!(f, "model error: {e}"),
            SoctamError::Pattern(e) => write!(f, "pattern error: {e}"),
            SoctamError::Compaction(e) => write!(f, "compaction error: {e}"),
            SoctamError::Tam(e) => write!(f, "tam error: {e}"),
            SoctamError::Validation(diags) => write!(f, "validation failed: {diags}"),
            SoctamError::Internal { site, message } => {
                write!(f, "internal pipeline failure at `{site}`: {message}")
            }
        }
    }
}

impl Error for SoctamError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SoctamError::Model(e) => Some(e),
            SoctamError::Pattern(e) => Some(e),
            SoctamError::Compaction(e) => Some(e),
            SoctamError::Tam(e) => Some(e),
            SoctamError::Validation(diags) => Some(diags),
            SoctamError::Internal { .. } => None,
        }
    }
}

impl From<Diagnostics> for SoctamError {
    fn from(diags: Diagnostics) -> Self {
        SoctamError::Validation(diags)
    }
}

impl From<ModelError> for SoctamError {
    fn from(e: ModelError) -> Self {
        SoctamError::Model(e)
    }
}

impl From<PatternError> for SoctamError {
    fn from(e: PatternError) -> Self {
        SoctamError::Pattern(e)
    }
}

impl From<CompactionError> for SoctamError {
    fn from(e: CompactionError) -> Self {
        SoctamError::Compaction(e)
    }
}

impl From<TamError> for SoctamError {
    fn from(e: TamError) -> Self {
        SoctamError::Tam(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources_work() {
        let err: SoctamError = ModelError::EmptySoc.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("model error"));
        let err: SoctamError = TamError::ZeroWidthBudget.into();
        assert!(err.to_string().contains("tam error"));
    }
}
