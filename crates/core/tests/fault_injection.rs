//! End-to-end fault-injection matrix: every failpoint site, when armed,
//! must surface as a *structured* error from the pipeline — never as an
//! uncontained panic.
//!
//! The failpoint registry is process-global, so every test here
//! serializes on one lock (this binary holds only fault tests; the rest
//! of the suite runs in other processes and is unaffected).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::{Mutex, MutexGuard, PoisonError};

use soctam::exec::fault;
use soctam::model::parser;
use soctam::{Benchmark, FaultAction, RandomPatternConfig, SiOptimizer, SiPatternSet, SoctamError};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes a test and leaves the registry clean on both entry and
/// exit (even when a previous test failed while holding the lock).
fn guard() -> MutexGuard<'static, ()> {
    let guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    fault::reset();
    guard
}

fn run_pipeline(soc: &soctam::Soc, patterns: &SiPatternSet) -> Result<(), SoctamError> {
    SiOptimizer::new(soc)
        .max_tam_width(8)
        .partitions(2)
        .optimize(patterns)
        .map(|_| ())
}

#[test]
fn every_pipeline_failpoint_yields_a_structured_error() {
    let _guard = guard();
    let soc = Benchmark::D695.soc();
    let patterns =
        SiPatternSet::random(&soc, &RandomPatternConfig::new(200).with_seed(1)).expect("valid");

    // hit()-based sites panic inside a stage; the pipeline boundary must
    // convert each into SoctamError::Internal naming the site.
    for site in [
        "exec.pool.task",
        "exec.cache.lookup",
        "compaction.bucket",
        "tam.merge",
        "tam.schedule",
    ] {
        fault::set(site, FaultAction::Panic);
        let err = run_pipeline(&soc, &patterns).expect_err(site);
        fault::reset();
        match err {
            SoctamError::Internal { site: got, .. } => assert_eq!(got, site),
            other => panic!("site {site}: expected Internal, got {other:?}"),
        }
    }

    // check()-based sites return a typed error that forwards through the
    // stage's own error enum.
    fault::set("compaction.partition", FaultAction::Error);
    let err = run_pipeline(&soc, &patterns).expect_err("compaction.partition");
    fault::reset();
    assert!(
        matches!(err, SoctamError::Compaction(_)),
        "expected Compaction, got {err:?}"
    );
    assert!(err.to_string().contains("compaction.partition"), "{err}");
}

#[test]
fn generator_failpoint_fails_pattern_construction() {
    let _guard = guard();
    let soc = Benchmark::D695.soc();
    fault::set("patterns.generate.random", FaultAction::Error);
    let err = SiPatternSet::random(&soc, &RandomPatternConfig::new(10))
        .expect_err("generator fault fires");
    fault::reset();
    assert!(
        err.to_string().contains("patterns.generate.random"),
        "{err}"
    );
}

#[test]
fn parser_failpoint_fails_soc_parsing() {
    let _guard = guard();
    let text = parser::write_soc(&Benchmark::D695.soc());
    fault::set("model.parse", FaultAction::Error);
    let err = parser::parse_soc(&text).expect_err("parser fault fires");
    fault::reset();
    assert!(err.to_string().contains("model.parse"), "{err}");
}

#[test]
fn counted_failpoint_fires_on_the_nth_hit_only() {
    let _guard = guard();
    let soc = Benchmark::D695.soc();
    let patterns =
        SiPatternSet::random(&soc, &RandomPatternConfig::new(100).with_seed(2)).expect("valid");
    // The schedule site is hit many times per run; arming it from a very
    // large hit count must leave the run untouched.
    fault::set_after("tam.schedule", FaultAction::Panic, u64::MAX - 1);
    run_pipeline(&soc, &patterns).expect("fault never reached");
    fault::reset();
}

#[test]
fn env_spec_round_trips_through_the_parser() {
    let _guard = guard();
    let parsed = fault::parse_spec("tam.merge=panic;model.parse=error@3,exec.pool.task=delay:5")
        .expect("valid spec");
    assert_eq!(parsed.len(), 3);
    assert!(fault::parse_spec("nonsense").is_err());
    assert!(fault::parse_spec("site=explode").is_err());
}

#[test]
fn inactive_registry_is_inert_and_deterministic() {
    let _guard = guard();
    let soc = Benchmark::D695.soc();
    let patterns =
        SiPatternSet::random(&soc, &RandomPatternConfig::new(300).with_seed(4)).expect("valid");
    let run = || {
        SiOptimizer::new(&soc)
            .max_tam_width(16)
            .partitions(2)
            .optimize(&patterns)
            .expect("optimizes")
            .total_time()
    };
    let baseline = run();
    // Arm and disarm a failpoint; the disarmed pipeline must be
    // bit-identical to the never-armed one.
    fault::set("tam.merge", FaultAction::Panic);
    fault::reset();
    assert_eq!(run(), baseline);
}
