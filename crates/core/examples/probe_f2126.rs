#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::{Benchmark, Objective, SiGroupSpec, TamOptimizer};
fn main() {
    let soc = Benchmark::F2126.soc();
    let groups = vec![SiGroupSpec::new(soc.core_ids().collect(), 300)];
    for obj in [Objective::Total, Objective::InTestOnly] {
        let r = TamOptimizer::new(&soc, 64, groups.clone())
            .unwrap()
            .objective(obj)
            .optimize()
            .unwrap();
        println!(
            "{obj:?}: T={} in={} si={}",
            r.evaluation().t_total(),
            r.evaluation().t_in,
            r.evaluation().t_si
        );
        println!("{}", r.architecture());
        for (i, t) in r.evaluation().rail_time_in.iter().enumerate() {
            println!("  rail{i} t_in={t}");
        }
    }
    // manual 4-rail allocation
    use soctam::{CoreId, Evaluator, TestRail, TestRailArchitecture};
    let arch = TestRailArchitecture::new(
        &soc,
        vec![
            TestRail::new(vec![CoreId::new(0)], 16).unwrap(),
            TestRail::new(vec![CoreId::new(1)], 14).unwrap(),
            TestRail::new(vec![CoreId::new(2)], 18).unwrap(),
            TestRail::new(vec![CoreId::new(3)], 16).unwrap(),
        ],
    )
    .unwrap();
    let ev = Evaluator::new(&soc, 64, groups.clone()).unwrap();
    let e = ev.evaluate(&arch);
    println!(
        "manual (16,14,18,16): T={} in={} si={} rails_in={:?}",
        e.t_total(),
        e.t_in,
        e.t_si,
        e.rail_time_in
    );
}
