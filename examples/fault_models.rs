//! Fault models over a realistic interconnect topology (Fig. 1): generate
//! MA and reduced-MT test sets per routing bundle, grade what the paper's
//! *random* recipe actually covers, and push an MA set through the full
//! compaction + TAM-optimization pipeline.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fault_models
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::model::topology::InterconnectTopology;
use soctam::patterns::coverage::ma_coverage;
use soctam::patterns::generator::{maximal_aggressor, reduced_mt};
use soctam::{Benchmark, RandomPatternConfig, SiOptimizer, SiPattern, SiPatternSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Benchmark::P34392.soc();
    // A Fig.-1-style topology: 12 routing channels of 24 coupled lines,
    // each dominated by one core boundary plus a few foreign lines.
    let topo = InterconnectTopology::synth(&soc, 12, 24, 7)?;
    println!(
        "{}: {} bundles, {} victim lines, {} MA faults",
        soc.name(),
        topo.bundles().len(),
        topo.total_victims(),
        6 * topo.total_victims()
    );

    // MA test set: 6 vector pairs per victim, per bundle.
    let mut ma_set: Vec<SiPattern> = Vec::new();
    for bundle in topo.bundles() {
        ma_set.extend(maximal_aggressor(bundle.terminals())?);
    }
    println!("MA set: {} patterns (6 per victim)", ma_set.len());

    // Reduced-MT with k = 2 on the first bundle, for scale.
    let mt = reduced_mt(topo.bundles()[0].terminals(), 2)?;
    println!(
        "reduced-MT (k=2) on one 24-line bundle alone: {} patterns",
        mt.len()
    );

    // How much strict-MA coverage does the paper's random recipe reach?
    let random = SiPatternSet::random(&soc, &RandomPatternConfig::new(50_000).with_seed(1))?;
    for (label, locality) in [("strict", None), ("k=1", Some(1)), ("k=2", Some(2))] {
        let report = ma_coverage(&topo, random.as_slice(), locality);
        println!(
            "random 50k patterns, {label:>6} MA coverage: {:5.1}% ({}/{})",
            report.fraction() * 100.0,
            report.covered_faults,
            report.total_faults
        );
    }
    let full = ma_coverage(&topo, &ma_set, None);
    assert_eq!(full.fraction(), 1.0);

    // The MA set is a real workload: compact it and optimize the TAM.
    let result = SiOptimizer::new(&soc)
        .max_tam_width(32)
        .partitions(4)
        .optimize(&SiPatternSet::from_patterns(ma_set.clone()))?;
    println!(
        "MA workload: {} raw -> {} compacted patterns; T_soc = {} cc (InTest {}, SI {})",
        ma_set.len(),
        result.compacted().total_patterns(),
        result.total_time(),
        result.intest_time(),
        result.si_time()
    );
    Ok(())
}
