//! Example 1 / Figure 3 of the paper: the same SOC and the same SI test
//! groups under two different TAM designs give different SI testing times
//! and schedules.
//!
//! Five cores, three SI groups:
//!   * `SI1` involves all five cores,
//!   * `SI2` involves cores 1, 4, 5,
//!   * `SI3` involves cores 2, 3.
//!
//! Architecture (a): TAM1 = {1, 2}, TAM2 = {3, 4}, TAM3 = {5} — every SI
//! group touches several rails, so all three serialize.
//! Architecture (b): TAM1 = {1, 4, 5}, TAM2 = {2, 3} — now SI2 and SI3
//! touch disjoint rails and run in parallel.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fig3_schedules
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::tam::render_schedule;
use soctam::{CoreId, CoreSpec, Evaluator, SiGroupSpec, Soc, TestRail, TestRailArchitecture};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five identical cores keep the arithmetic easy to follow.
    let cores = (1..=5)
        .map(|i| CoreSpec::new(format!("core{i}"), 16, 16, 0, vec![64, 64], 50))
        .collect::<Result<Vec<_>, _>>()?;
    let soc = Soc::new("example1", cores)?;

    let c = CoreId::new;
    let groups = vec![
        SiGroupSpec::new(vec![c(0), c(1), c(2), c(3), c(4)], 40), // SI1
        SiGroupSpec::new(vec![c(0), c(3), c(4)], 30),             // SI2
        SiGroupSpec::new(vec![c(1), c(2)], 25),                   // SI3
    ];
    let evaluator = Evaluator::new(&soc, 12, groups)?;

    // --- Figure 3(a): three rails. ---
    let arch_a = TestRailArchitecture::new(
        &soc,
        vec![
            TestRail::new(vec![c(0), c(1)], 4)?,
            TestRail::new(vec![c(2), c(3)], 4)?,
            TestRail::new(vec![c(4)], 4)?,
        ],
    )?;
    let eval_a = evaluator.evaluate(&arch_a);

    // T_si1 = max over rails of the rail's member contributions.
    let shift = evaluator.time_table().si_shift(c(0), 4); // identical cores
    let t_si1_by_hand = (2 * 40 * shift).max(2 * 40 * shift).max(40 * shift);
    println!("architecture (a):");
    println!("{arch_a}");
    println!(
        "T_si1 = max(T1+T2, T3+T4, T5) = {} (evaluator: {})",
        t_si1_by_hand, eval_a.group_times[0].time
    );
    assert_eq!(eval_a.group_times[0].time, t_si1_by_hand);
    println!("{}", render_schedule(&arch_a, &eval_a));

    // --- Figure 3(b): two rails. ---
    let arch_b = TestRailArchitecture::new(
        &soc,
        vec![
            TestRail::new(vec![c(0), c(3), c(4)], 6)?,
            TestRail::new(vec![c(1), c(2)], 6)?,
        ],
    )?;
    let eval_b = evaluator.evaluate(&arch_b);
    let shift6 = evaluator.time_table().si_shift(c(0), 6);
    let t_si1_b = (3 * 40 * shift6).max(2 * 40 * shift6);
    println!("architecture (b):");
    println!("{arch_b}");
    println!(
        "T_si1 = max(T1+T4+T5, T2+T3) = {} (evaluator: {})",
        t_si1_b, eval_b.group_times[0].time
    );
    assert_eq!(eval_b.group_times[0].time, t_si1_b);

    // In (b), SI2 (rail 0 only) and SI3 (rail 1 only) run in parallel.
    let t2 = &eval_b.schedule.tests()[1];
    let t3 = &eval_b.schedule.tests()[2];
    assert_eq!(t2.begin, t3.begin, "SI2 and SI3 start together in (b)");
    println!("{}", render_schedule(&arch_b, &eval_b));

    println!(
        "same SI groups, same cores: T_si = {} cc on (a) vs {} cc on (b)",
        eval_a.t_si, eval_b.t_si
    );
    Ok(())
}
