//! The Section 2 motivation, reproduced numerically: why interconnect SI
//! test time rivals core-internal test time on nanometre SOCs.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example motivation
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::patterns::generator::{maximal_aggressor, reduced_mt_estimate};
use soctam::TerminalId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's example: a 32-bit on-chip bus, ten cores, each core on
    // average sends data to two others => N = 2 * 10 * 32 = 640 victim
    // interconnects.
    let victims = 2 * 10 * 32u32;
    println!("victim interconnects under test: N = {victims}");

    // Maximal-aggressor model: 6 vector pairs per victim.
    let bundle: Vec<TerminalId> = (0..victims).map(TerminalId::new).collect();
    let ma = maximal_aggressor(&bundle)?;
    println!("MA fault model:        {} vector pairs (6N)", ma.len());
    assert_eq!(ma.len(), 3_840);

    // Reduced multiple-transition model with locality factor k = 3.
    let mt = reduced_mt_estimate(u64::from(victims), 3);
    println!("reduced-MT (k=3):      {mt} vector pairs (N * 2^(2k+2))");
    assert_eq!(mt, 163_840);

    // Serial ExTest cost: every pattern shifts one bit per core I/O. With
    // the sum of core I/Os in the low thousands, MA testing alone costs
    // millions of cycles on a 1-wire ExTest path.
    let total_core_io: u64 = 3_000;
    println!(
        "serial ExTest estimate: MA = {} cycles, reduced-MT = {} cycles",
        ma.len() as u64 * total_core_io,
        mt * total_core_io
    );
    println!(
        "compare: the Nexperia PNX8550 SOC tests its core-internal logic in \
         under 2,000,000 cycles on a 140-wire TAM — interconnect SI test \
         would dominate without architecture optimization."
    );
    Ok(())
}
