//! Power-constrained SI scheduling (an extension of Algorithm 1): the
//! same optimized architecture and SI test groups scheduled under
//! decreasing peak-power budgets.
//!
//! Shifting many wrapper chains in parallel toggles a lot of logic; test
//! engineers cap the peak power. The extension starts an SI test only when
//! its rails are free *and* the sum of running tests' power ratings stays
//! within the budget.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example power_schedule
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::tam::power::{respects_power_budget, schedule_si_tests_power, PoweredSiTest};
use soctam::{Benchmark, CoreId, RandomPatternConfig, SiOptimizer, SiPatternSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Benchmark::P34392.soc();
    let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(10_000).with_seed(5))?;
    let result = SiOptimizer::new(&soc)
        .max_tam_width(32)
        .partitions(8)
        .optimize(&patterns)?;
    let eval = result.evaluation();

    // Rate each SI group's power as the total wrapper cells it toggles
    // (WOCs + WICs of its cores) — a standard toggle-count proxy.
    let powered: Vec<PoweredSiTest> = eval
        .group_times
        .iter()
        .enumerate()
        .map(|(g, timing)| {
            let cores = result.compacted().groups()[g].cores();
            let power: u64 = cores
                .iter()
                .map(|&c: &CoreId| u64::from(soc.core(c).woc_count() + soc.core(c).wic_count()))
                .sum();
            PoweredSiTest {
                timing: timing.clone(),
                power,
            }
        })
        .collect();
    let single_max = powered.iter().map(|t| t.power).max().unwrap_or(0);

    // The concurrent power peak Algorithm 1 actually reaches.
    let unconstrained_peak = eval
        .schedule
        .tests()
        .iter()
        .map(|t| {
            eval.schedule
                .tests()
                .iter()
                .filter(|u| u.begin < t.end && t.begin < u.end)
                .map(|u| powered[u.group].power)
                .sum::<u64>()
        })
        .max()
        .unwrap_or(0);

    println!(
        "unconstrained Algorithm 1: T_si = {} cc, concurrent power peak = {}",
        eval.t_si, unconstrained_peak
    );
    println!("{:>10} {:>10} {:>10}", "budget", "T_si", "slowdown");
    let span = unconstrained_peak.saturating_sub(single_max);
    for step in 0..4u64 {
        let budget = unconstrained_peak - span * step / 3;
        let schedule = schedule_si_tests_power(&powered, budget)?;
        assert!(respects_power_budget(&schedule, &powered, budget));
        println!(
            "{:>10} {:>10} {:>9.2}x",
            budget,
            schedule.makespan(),
            schedule.makespan() as f64 / eval.t_si.max(1) as f64
        );
    }
    println!(
        "\n(at this operating point the cross-partition remainder group already\n\
         serializes the schedule, so the cap is free — a common outcome)"
    );

    // A distilled illustration on four rail-disjoint SI tests of equal
    // power: halving the budget exactly halves the parallelism.
    use soctam::tam::SiGroupTime;
    let disjoint: Vec<PoweredSiTest> = (0..4)
        .map(|r| PoweredSiTest {
            timing: SiGroupTime {
                time: 1_000,
                rails: vec![r],
                bottleneck_rail: r,
            },
            power: 100,
        })
        .collect();
    println!("\nfour rail-disjoint tests, 100 power units each, 1000 cc each:");
    println!("{:>10} {:>10}", "budget", "T_si");
    for budget in [400u64, 200, 100] {
        let schedule = schedule_si_tests_power(&disjoint, budget)?;
        assert!(respects_power_budget(&schedule, &disjoint, budget));
        println!("{:>10} {:>10}", budget, schedule.makespan());
    }
    println!("\ntighter power budgets serialize SI tests that Algorithm 1 would overlap.");
    Ok(())
}
