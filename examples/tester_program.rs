//! Generate the actual tester program for an optimized architecture and
//! cross-check the analytic timing model against the bit-level simulation.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example tester_program
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::tester::simulate;
use soctam::{Benchmark, RandomPatternConfig, SiOptimizer, SiPatternSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let soc = Benchmark::D695.soc();
    let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(2_000).with_seed(3))?;
    let result = SiOptimizer::new(&soc)
        .max_tam_width(16)
        .partitions(2)
        .optimize(&patterns)?;

    // The analytic model (what the optimizer reasoned with)...
    println!(
        "analytic:  T_in = {:>7} cc, T_si = {:>6} cc",
        result.intest_time(),
        result.si_time()
    );

    // ...and the bit-level tester program, simulated cycle by cycle.
    let sim = simulate(
        &soc,
        result.architecture(),
        result.compacted().groups(),
        true, // record the stimulus streams
    )?;
    println!(
        "simulated: T_in = {:>7} cc, T_si = {:>6} cc",
        sim.t_in, sim.t_si
    );
    assert_eq!(sim.t_in, result.intest_time());
    assert_eq!(sim.t_si, result.si_time());
    println!("model and bit-level machine agree exactly ✓");

    println!(
        "\ntester program: {} stimulus bits over {} wires",
        sim.bits_driven,
        result.architecture().total_width()
    );
    for (group, stream) in sim.si_streams.iter().take(2) {
        let preview: String = stream
            .bits
            .iter()
            .take(48)
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        println!(
            "  SI group {group} on TAM{}: {} cycles, stream starts {preview}…",
            stream.rail, stream.cycles
        );
    }
    Ok(())
}
