//! Table 1 of the paper: the SI test pattern format, its bus postfix and
//! the compatibility rules that drive vertical compaction.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example pattern_format
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::model::BusLineId;
use soctam::patterns::Symbol;
use soctam::{compaction, CoreId, CoreSpec, SiPattern, Soc, TerminalId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three small cores; their wrapper output cells form the global
    // terminal space t0..t8.
    let soc = Soc::new(
        "table1",
        vec![
            CoreSpec::new("core1", 2, 3, 0, vec![], 1)?,
            CoreSpec::new("core2", 2, 3, 0, vec![], 1)?,
            CoreSpec::new("core3", 2, 3, 0, vec![], 1)?,
        ],
    )?;
    let t = TerminalId::new;
    let c = CoreId::new;

    // p1: victim rises on core1's first output, two aggressors nearby,
    //     occupying bus line 1 from core1's boundary.
    let p1 = SiPattern::new(
        vec![
            (t(0), Symbol::Rise),
            (t(1), Symbol::Zero),
            (t(2), Symbol::Fall),
        ],
        vec![(BusLineId::new(1), c(0))],
    )?;
    // p2: activity on core2 only, no bus usage.
    let p2 = SiPattern::new(vec![(t(3), Symbol::One), (t(4), Symbol::Rise)], vec![])?;
    // p3: conflicts with p1 — same victim, opposite transition.
    let p3 = SiPattern::new(vec![(t(0), Symbol::Fall)], vec![])?;
    // p4: compatible care bits, but triggers bus line 1 from core3's
    //     boundary — the bus rule forbids merging it with p1.
    let p4 = SiPattern::new(vec![(t(7), Symbol::Rise)], vec![(BusLineId::new(1), c(2))])?;

    println!("Table-1 rendering (x = don't care, ‖ separates the bus postfix):");
    for (name, p) in [("p1", &p1), ("p2", &p2), ("p3", &p3), ("p4", &p4)] {
        println!("  {name}: {}", p.render(&soc, 4));
    }

    println!();
    println!("compatibility:");
    println!("  p1 ~ p2: {} (disjoint care bits)", p1.is_compatible(&p2));
    println!(
        "  p1 ~ p3: {} (same victim, opposite edge)",
        p1.is_compatible(&p3)
    );
    println!(
        "  p1 ~ p4: {} (same bus line, different driver)",
        p1.is_compatible(&p4)
    );

    let merged = p1.merged(&p2)?;
    println!();
    println!("merged p1+p2: {}", merged.render(&soc, 4));

    let compacted = compaction::compact_greedy(&soc, &[p1, p2, p3, p4]);
    println!(
        "greedy clique cover of {{p1..p4}}: {} compacted patterns",
        compacted.len()
    );
    // p1 absorbs p2; p3 conflicts with p1 (victim edge) and p4 conflicts
    // with p1 (bus driver), but p3 and p4 are mutually compatible.
    assert_eq!(compacted.len(), 2);
    for (i, p) in compacted.iter().enumerate() {
        println!("  q{i}: {}", p.render(&soc, 4));
    }
    Ok(())
}
