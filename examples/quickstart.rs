//! Quickstart: optimize the test architecture of a benchmark SOC for both
//! core-internal logic and core-external interconnect SI faults.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::tam::render_schedule;
use soctam::{Benchmark, RandomPatternConfig, SiOptimizer, SiPatternSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick an SOC. `d695` is the small ITC'02 benchmark; `p34392` and
    //    `p93791` are the two the paper evaluates.
    let soc = Benchmark::D695.soc();
    println!("SOC: {soc}");

    // 2. Generate an SI test set with the paper's randomized recipe:
    //    1 victim + 2..6 aggressors per pattern, 50 % shared-bus usage.
    let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(5_000).with_seed(42))?;
    let stats = patterns.stats(&soc);
    println!(
        "generated {} SI patterns ({:.1} care bits each, {:.0}% use the bus)",
        patterns.len(),
        stats.mean_care_bits(),
        stats.bus_usage_fraction() * 100.0
    );

    // 3. Compact (two-dimensionally) and optimize the TAM in one call.
    let result = SiOptimizer::new(&soc)
        .max_tam_width(24)
        .partitions(4)
        .optimize(&patterns)?;

    println!(
        "compacted to {} patterns in {} groups (ratio {:.1}x)",
        result.compacted().total_patterns(),
        result.compacted().groups().len(),
        result.compacted().stats().compaction_ratio()
    );
    println!();
    println!("{}", result.architecture());
    println!(
        "{}",
        render_schedule(result.architecture(), result.evaluation())
    );
    println!(
        "T_soc = {} clock cycles (InTest {} + SI {})",
        result.total_time(),
        result.intest_time(),
        result.si_time()
    );
    Ok(())
}
