//! Load a custom SOC from ITC'02 `.soc` text and run the full pipeline.
//!
//! Users who have the original ITC'02 benchmark files can point this at
//! them (`cargo run --release --example custom_soc -- path/to/p93791.soc`)
//! to rerun every experiment on the genuine data; without an argument an
//! embedded sample SOC is used.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::env;
use std::fs;

use soctam::model::parser::parse_soc;
use soctam::{RandomPatternConfig, SiOptimizer, SiPatternSet};

const SAMPLE: &str = "
# A small three-core SOC in ITC'02 exchange format.
SocName sample3
TotalModules 4
Module 0 Level 0 Inputs 32 Outputs 32 Bidirs 0 ScanChains 0 TotalTests 0
Module 1 Level 1 Inputs 28 Outputs 56 Bidirs 0 ScanChains 4 : 120 120 110 110 TotalTests 1
Test 1 ScanUse 1 TamUse 1 Patterns 180
Module 2 Level 1 Inputs 64 Outputs 39 Bidirs 8 ScanChains 8 : 60 60 60 60 55 55 55 55 TotalTests 1
Test 1 ScanUse 1 TamUse 1 Patterns 220
Module 3 Level 1 Inputs 16 Outputs 48 Bidirs 0 ScanChains 0 TotalTests 1
Test 1 ScanUse 0 TamUse 1 Patterns 95
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match env::args().nth(1) {
        Some(path) => {
            println!("loading {path}");
            fs::read_to_string(path)?
        }
        None => {
            println!("no file given; using the embedded sample (pass a .soc path to override)");
            SAMPLE.to_owned()
        }
    };

    let soc = parse_soc(&text)?.into_soc()?;
    println!("parsed: {soc}");
    for (id, core) in soc.iter() {
        println!(
            "  {id}: {} — {} in / {} out / {} bidir, {} scan chains, {} patterns",
            core.name(),
            core.inputs(),
            core.outputs(),
            core.bidirs(),
            core.scan_chains().len(),
            core.patterns()
        );
    }

    let patterns = SiPatternSet::random(&soc, &RandomPatternConfig::new(2_000).with_seed(1))?;
    for (width, parts) in [(8u32, 1u32), (8, 2), (16, 1), (16, 2)] {
        let result = SiOptimizer::new(&soc)
            .max_tam_width(width)
            .partitions(parts)
            .optimize(&patterns)?;
        println!(
            "W_max={width:>2} i={parts}: T_soc={:>8} cc (InTest {:>8}, SI {:>7}, {} rails)",
            result.total_time(),
            result.intest_time(),
            result.si_time(),
            result.architecture().num_rails()
        );
    }
    Ok(())
}
