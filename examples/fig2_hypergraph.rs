//! Figure 2 of the paper: hypergraph partitioning for SI test pattern
//! length reduction.
//!
//! Seven cores form the vertices; each distinct care-core set of the SI
//! test set is a hyperedge. Bipartitioning the cores leaves the hyperedge
//! {4, 6, 7} cut — the patterns behind it must load the wrapper output
//! cells of *all* cores, while every other pattern only loads its own
//! group.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fig2_hypergraph
//! ```

#![allow(clippy::unwrap_used, clippy::expect_used)]

use soctam::hypergraph::{HypergraphBuilder, PartitionConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Cores 1..=7 (vertex index = core number - 1); the vertex weight is
    // the core's wrapper-output-cell count.
    let woc = [24u64, 24, 24, 24, 24, 24, 24];
    let mut builder = HypergraphBuilder::new();
    for &w in &woc {
        builder.add_vertex(w);
    }
    // Hyperedges: care-core sets with their pattern counts as weights.
    // Cores 1, 2 and 4 exchange many patterns, as do cores 3, 5, 6 and 7;
    // only the light {4, 6, 7} edge straddles the two clusters.
    let edges: &[(&[u32], u64)] = &[
        (&[0, 1], 120),   // cores 1-2
        (&[0, 3], 110),   // cores 1-4
        (&[1, 3], 95),    // cores 2-4
        (&[2, 4], 90),    // cores 3-5
        (&[4, 5], 85),    // cores 5-6
        (&[5, 6], 80),    // cores 6-7
        (&[4, 6], 75),    // cores 5-7
        (&[3, 5, 6], 12), // cores 4-6-7: the cut hyperedge of Fig. 2
    ];
    for &(pins, weight) in edges {
        builder.add_edge(weight, pins)?;
    }
    let hg = builder.build();

    let partition = hg.partition(&PartitionConfig::new(2).with_seed(1))?;
    println!("core partition (core -> group):");
    for v in 0..7u32 {
        println!("  core {} -> group {}", v + 1, partition.part(v));
    }
    println!();

    let mut cut_edges = Vec::new();
    for e in 0..hg.num_edges() as u32 {
        if partition.is_cut(&hg, e) {
            cut_edges.push(e);
        }
    }
    println!("cut hyperedges (their patterns stay full-length):");
    for e in &cut_edges {
        let cores: Vec<String> = hg.pins(*e).iter().map(|&v| (v + 1).to_string()).collect();
        println!(
            "  {{{}}} carrying {} patterns",
            cores.join("-"),
            hg.edge_weight(*e)
        );
    }
    println!(
        "\ncut pattern weight: {} of {} total",
        partition.cut_weight(&hg),
        hg.total_edge_weight()
    );

    // The natural cut separates {1,2,3} from {4,5,6,7} and cuts only the
    // three-core hyperedge, exactly as in the figure.
    assert_eq!(partition.cut_weight(&hg), 12);
    Ok(())
}
