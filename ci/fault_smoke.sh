#!/usr/bin/env bash
# Fault-injection smoke test: arm each shipped failpoint against the
# release CLI and assert the process fails *cleanly* — a structured
# error on stderr naming the site, exit code 1 (a contained, reported
# failure), and never 101 (an uncaught panic abort).
#
# Usage: ci/fault_smoke.sh [path/to/soctam]
# Builds the release binary first when no path is given.
#
# Exit-code convention (shared with `soctam-analyze check`): 0 = clean,
# 1 = a reported, structured failure (findings / contained fault),
# 2 = usage or I/O error. 101 always means an uncaught panic and fails
# the smoke test.

set -u

BIN="${1:-target/release/soctam}"
if [ ! -x "$BIN" ]; then
    echo "building release CLI..."
    cargo build --release --offline -p soctam-cli || exit 1
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

# model.parse needs a real .soc file on disk; export one first (with the
# registry inactive, so the export itself cannot trip).
"$BIN" export d695 > "$WORK/d695.soc" || { echo "FAIL: export d695"; exit 1; }

failures=0

# run <failpoint-spec> <target> [extra flags...] — the optimize
# invocation must exit 1 with the failing site named on stderr.
run() {
    local spec="$1" target="$2"
    shift 2
    local site="${spec%%=*}"
    local stderr_file="$WORK/stderr"

    SOCTAM_FAILPOINTS="$spec" "$BIN" optimize "$target" \
        --patterns 500 --width 8 --partitions 2 "$@" \
        >"$WORK/stdout" 2>"$stderr_file"
    local code=$?

    if [ "$code" -eq 101 ]; then
        echo "FAIL [$spec]: process panicked (exit 101) instead of failing cleanly"
        failures=$((failures + 1))
        return
    fi
    if [ "$code" -ne 1 ]; then
        echo "FAIL [$spec]: expected exit 1, got $code"
        failures=$((failures + 1))
        return
    fi
    if ! grep -q "error:" "$stderr_file"; then
        echo "FAIL [$spec]: stderr carries no structured error line"
        sed 's/^/    /' "$stderr_file"
        failures=$((failures + 1))
        return
    fi
    if ! grep -q "$site" "$stderr_file"; then
        echo "FAIL [$spec]: stderr does not name the failing site '$site'"
        sed 's/^/    /' "$stderr_file"
        failures=$((failures + 1))
        return
    fi
    echo "ok   [$spec] -> $(grep -m1 'error:' "$stderr_file")"
}

# One spec per shipped failpoint reachable from `soctam optimize`:
# `error` for the fallible (check) sites, `panic` for the infallible
# (hit) sites — the latter prove the pipeline's panic containment.
run "model.parse=error"              "$WORK/d695.soc"
run "patterns.generate.random=error" d695
run "compaction.partition=error"     d695
run "compaction.bucket=panic"        d695
run "tam.merge=panic"                d695
run "tam.rail_eval=panic"            d695
run "tam.schedule=panic"             d695
run "exec.cache.lookup=panic"        d695
run "tam.rectpack=panic"             d695 --backend rect-pack

# The rect-pack site lives only on the rect-pack path: armed against the
# default backend it is never reached, so the run must succeed.
SOCTAM_FAILPOINTS="tam.rectpack=panic" "$BIN" optimize d695 \
    --patterns 500 --width 8 --partitions 2 >/dev/null 2>&1
code=$?
if [ "$code" -ne 0 ]; then
    echo "FAIL [tam.rectpack default]: site fired on the default backend (exit $code)"
    failures=$((failures + 1))
else
    echo "ok   [tam.rectpack default] -> unreachable on tr-architect, exit 0"
fi

# A malformed spec must be rejected up front as a usage error (exit 2),
# not silently ignored.
SOCTAM_FAILPOINTS="tam.merge=explode" "$BIN" optimize d695 --patterns 100 \
    >/dev/null 2>"$WORK/stderr"
code=$?
if [ "$code" -ne 2 ] || ! grep -q "SOCTAM_FAILPOINTS" "$WORK/stderr"; then
    echo "FAIL [bad spec]: expected usage error (exit 2) naming SOCTAM_FAILPOINTS, got $code"
    failures=$((failures + 1))
else
    echo "ok   [bad spec] -> rejected as usage error"
fi

# --- speculative probe failpoint ---------------------------------------
# tam.probe is the one shipped failpoint that must NOT fail the run: a
# faulted speculative probe is discarded (counted as wasted) and the
# step falls back to the surviving candidates — deterministically at
# every --probe-jobs value, so the faulted outputs must be identical.
probe_run() {
    local spec="$1" probe_jobs="$2" out="$3"
    SOCTAM_FAILPOINTS="$spec" "$BIN" optimize d695 \
        --patterns 500 --width 8 --partitions 2 --probe-jobs "$probe_jobs" \
        >"$out" 2>"$WORK/probe.stderr"
}
for spec in "tam.probe=error@5" "tam.probe=panic@3"; do
    probe_run "$spec" 1 "$WORK/probe.serial"
    code_serial=$?
    probe_run "$spec" 4 "$WORK/probe.par"
    code_par=$?
    if [ "$code_serial" -ne 0 ] || [ "$code_par" -ne 0 ]; then
        echo "FAIL [$spec]: faulted probes must degrade, not fail" \
            "(exit $code_serial serial, $code_par parallel)"
        sed 's/^/    /' "$WORK/probe.stderr"
        failures=$((failures + 1))
    elif ! cmp -s "$WORK/probe.serial" "$WORK/probe.par"; then
        echo "FAIL [$spec]: output diverges between --probe-jobs 1 and 4"
        failures=$((failures + 1))
    else
        echo "ok   [$spec] -> contained at every --probe-jobs, identical output"
    fi
done

# With the variable unset the same invocation must succeed.
"$BIN" optimize d695 --patterns 500 --width 8 --partitions 2 >/dev/null 2>&1
code=$?
if [ "$code" -ne 0 ]; then
    echo "FAIL [clean run]: expected exit 0 without failpoints, got $code"
    failures=$((failures + 1))
else
    echo "ok   [clean run] -> exit 0 with no failpoints"
fi

# --- daemon failpoints -------------------------------------------------
# An armed serve.dispatch fault must surface as a structured HTTP error
# on the open connection — never a hung socket or a dead daemon — and
# the daemon must still shut down cleanly afterwards.
SERVE="${SERVE:-target/release/soctam-serve}"
CTL="${CTL:-target/release/soctam-servectl}"
if [ ! -x "$SERVE" ] || [ ! -x "$CTL" ]; then
    echo "building release daemon..."
    cargo build --release --offline -p soctam-serve || exit 1
fi

SOCTAM_FAILPOINTS="serve.dispatch=error" \
    "$SERVE" --listen 127.0.0.1:0 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^soctam-serve listening on //p' "$WORK/serve.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL [serve.dispatch=error]: daemon never reported its address"
    sed 's/^/    /' "$WORK/serve.log"
    failures=$((failures + 1))
else
    "$CTL" "$ADDR" post /v1/tools/info '{"soc":"d695"}' \
        >"$WORK/body" 2>"$WORK/status"
    status="$(sed -n 's/^HTTP //p' "$WORK/status")"
    if [ "$status" != "500" ] || ! grep -q "serve.dispatch" "$WORK/body"; then
        echo "FAIL [serve.dispatch=error]: expected a structured HTTP 500" \
            "naming the site, got '${status:-no response}'"
        sed 's/^/    /' "$WORK/body"
        failures=$((failures + 1))
    else
        echo "ok   [serve.dispatch=error] -> structured HTTP 500 on the open socket"
    fi
    "$CTL" "$ADDR" post /admin/shutdown >/dev/null 2>&1
    wait "$SERVER_PID"
    code=$?
    SERVER_PID=""
    if [ "$code" -ne 0 ]; then
        echo "FAIL [serve shutdown]: daemon exited $code after the fault"
        failures=$((failures + 1))
    else
        echo "ok   [serve shutdown] -> daemon survived the fault, exited 0"
    fi
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures fault-injection smoke check(s) failed"
    exit 1
fi
echo "all fault-injection smoke checks passed"
