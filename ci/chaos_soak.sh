#!/usr/bin/env bash
# Chaos-soak gate: run the seeded fault-injection soak against the job
# subsystem with a pinned seed and a hard wall-clock watchdog, then
# prove the SIGTERM drain path on the release daemon (graceful exit 0
# with a journaled, terminal job table).
#
# Usage: ci/chaos_soak.sh [artifact-dir]
# Artifacts (soak log, daemon log, journal) land in the artifact dir —
# uploaded by CI on failure so a red soak reproduces from its seed.
#
# Exit codes: 0 = every invariant held, 1 = soak or drain failure,
# 2 = usage/build error.

set -u

ARTIFACTS="${1:-chaos-artifacts}"
mkdir -p "$ARTIFACTS" || exit 2

# Pinned seed: a red run reproduces with
#   SOCTAM_CHAOS_SEED=20260807 cargo test -p soctam-serve --test chaos_soak
SEED="${SOCTAM_CHAOS_SEED:-20260807}"
ROUNDS="${SOCTAM_CHAOS_ROUNDS:-6}"
# Hard watchdog: the soak's own per-wait watchdogs are 120 s; anything
# beyond 15 minutes wall-clock is a hang, not a slow runner.
HARD_TIMEOUT="${SOCTAM_CHAOS_TIMEOUT:-900}"

failures=0

echo "== chaos soak (seed=$SEED rounds=$ROUNDS timeout=${HARD_TIMEOUT}s) =="
if SOCTAM_CHAOS_SEED="$SEED" SOCTAM_CHAOS_ROUNDS="$ROUNDS" \
    timeout "$HARD_TIMEOUT" \
    cargo test --release --offline -p soctam-serve --test chaos_soak -- --nocapture \
    >"$ARTIFACTS/chaos_soak.log" 2>&1; then
    echo "ok: soak held every invariant"
else
    status=$?
    if [ "$status" -eq 124 ]; then
        echo "FAIL: soak exceeded the ${HARD_TIMEOUT}s hard watchdog (hang)"
    else
        echo "FAIL: soak failed (exit $status)"
    fi
    tail -40 "$ARTIFACTS/chaos_soak.log" | sed 's/^/    /'
    # Keep the soak journal for the artifact upload: the log names it.
    journal="$(sed -n 's/^chaos soak: .*journal=//p' "$ARTIFACTS/chaos_soak.log" | head -1)"
    [ -n "$journal" ] && [ -f "$journal" ] && cp "$journal" "$ARTIFACTS/" 2>/dev/null
    failures=$((failures + 1))
fi

echo "== SIGTERM drain (release daemon, journaled) =="
SERVE="target/release/soctam-serve"
CTL="target/release/soctam-servectl"
if [ ! -x "$SERVE" ] || [ ! -x "$CTL" ]; then
    echo "building release daemon..."
    cargo build --release --offline -p soctam-serve || exit 2
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVE" --listen 127.0.0.1:0 --journal "$WORK/jobs.wal" --stats \
    >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^soctam-serve listening on //p' "$WORK/serve.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: daemon never reported its listen address"
    sed 's/^/    /' "$WORK/serve.log"
    exit 1
fi

# A job in flight when SIGTERM lands must still leave the daemon free
# to exit 0: the drain cancels it down to a best-so-far result.
"$CTL" "$ADDR" submit optimize \
    '{"soc":"d695","params":{"patterns":300,"width":16}}' >/dev/null 2>&1
kill -TERM "$SERVER_PID"
DRAIN_OK=0
for _ in $(seq 1 100); do
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        DRAIN_OK=1
        break
    fi
    sleep 0.1
done
if [ "$DRAIN_OK" -eq 1 ] && wait "$SERVER_PID" 2>/dev/null; then
    echo "ok: SIGTERM drained the daemon to exit 0"
    SERVER_PID=""
else
    echo "FAIL: daemon did not exit 0 after SIGTERM"
    sed 's/^/    /' "$WORK/serve.log"
    cp "$WORK/serve.log" "$WORK/jobs.wal" "$ARTIFACTS/" 2>/dev/null
    failures=$((failures + 1))
fi
if [ -z "$SERVER_PID" ] && ! grep -q '"jobs":' "$WORK/serve.log"; then
    echo "FAIL: --stats printed no final metrics on shutdown"
    sed 's/^/    /' "$WORK/serve.log"
    failures=$((failures + 1))
fi

if [ "$failures" -gt 0 ]; then
    echo "chaos soak: $failures failure(s); artifacts in $ARTIFACTS/"
    exit 1
fi
echo "chaos soak: all invariants held"
