#!/usr/bin/env bash
# Daemon smoke test: build the release daemon, start it on an ephemeral
# port, drive good and malformed jobs through the std-only client
# (`soctam-servectl`), assert the structured status codes, and shut it
# down cleanly.
#
# Usage: ci/serve_smoke.sh [path/to/soctam-serve [path/to/soctam-servectl]]
# Builds the release binaries first when no paths are given.

set -u

SERVE="${1:-target/release/soctam-serve}"
CTL="${2:-target/release/soctam-servectl}"
if [ ! -x "$SERVE" ] || [ ! -x "$CTL" ]; then
    echo "building release daemon..."
    cargo build --release --offline -p soctam-serve || exit 1
fi

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
    rm -rf "$WORK"
}
trap cleanup EXIT

"$SERVE" --listen 127.0.0.1:0 --max-inflight 4 >"$WORK/serve.log" 2>&1 &
SERVER_PID=$!

# The daemon prints `soctam-serve listening on <addr>` once bound; with
# `--listen 127.0.0.1:0` that line is the only way to learn the port.
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's/^soctam-serve listening on //p' "$WORK/serve.log")"
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if [ -z "$ADDR" ]; then
    echo "FAIL: daemon never reported its listen address"
    sed 's/^/    /' "$WORK/serve.log"
    exit 1
fi
echo "daemon up at $ADDR (pid $SERVER_PID)"

failures=0

# expect <status> <desc> <get|post> <path> [json-body] — drive one
# request and assert the HTTP status servectl reports on stderr.
expect() {
    local want="$1" desc="$2" verb="$3" path="$4" body="${5:-}"
    if [ "$verb" = get ]; then
        "$CTL" "$ADDR" get "$path" >"$WORK/body" 2>"$WORK/status"
    else
        "$CTL" "$ADDR" post "$path" "$body" >"$WORK/body" 2>"$WORK/status"
    fi
    local got
    got="$(sed -n 's/^HTTP //p' "$WORK/status")"
    if [ "$got" != "$want" ]; then
        echo "FAIL [$desc]: expected HTTP $want, got '${got:-no response}'"
        sed 's/^/    /' "$WORK/status" "$WORK/body"
        failures=$((failures + 1))
        return 1
    fi
    echo "ok   [$desc] -> HTTP $got"
}

# body_has <desc> <needle> — assert on the last response body.
body_has() {
    local desc="$1" needle="$2"
    if ! grep -q "$needle" "$WORK/body"; then
        echo "FAIL [$desc]: response body lacks '$needle'"
        sed 's/^/    /' "$WORK/body"
        failures=$((failures + 1))
        return 1
    fi
}

expect 200 "tool schema" get /v1/tools && body_has "tool schema" '"optimize"'
expect 200 "healthz" get /healthz

expect 200 "good optimize" post /v1/tools/optimize \
    '{"soc":"d695","params":{"patterns":300,"width":16,"partitions":2}}' &&
    body_has "good optimize" '"request_id"'

expect 400 "broken JSON" post /v1/tools/optimize '{nope' &&
    body_has "broken JSON" '"usage"'
expect 404 "unknown tool" post /v1/tools/frobnicate '{"soc":"d695"}' &&
    body_has "unknown tool" '"not-found"'
expect 400 "unknown param" post /v1/tools/optimize \
    '{"soc":"d695","params":{"patern":7}}' &&
    body_has "unknown param" 'patern'
expect 422 "unresolvable SOC" post /v1/tools/info '{"soc":"/nonexistent/x.soc"}' &&
    body_has "unresolvable SOC" '"invalid"'

expect 200 "metrics" get /metrics && body_has "metrics" '"requests"'

expect 200 "shutdown" post /admin/shutdown
wait "$SERVER_PID"
code=$?
SERVER_PID=""
if [ "$code" -ne 0 ]; then
    echo "FAIL [shutdown]: daemon exited $code instead of 0"
    sed 's/^/    /' "$WORK/serve.log"
    failures=$((failures + 1))
else
    echo "ok   [shutdown] -> daemon exited 0"
fi

if [ "$failures" -ne 0 ]; then
    echo "$failures daemon smoke check(s) failed"
    exit 1
fi
echo "all daemon smoke checks passed"
