//! Root package: thin re-export of the soctam facade so integration
//! tests and examples can use one import path.
#![forbid(unsafe_code)]
pub use soctam::*;
