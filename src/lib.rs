//! Root package: thin re-export of the soctam facade so integration
//! tests and examples can use one import path.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
pub use soctam::*;
